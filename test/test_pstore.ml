(* Persistent store: heap, roots, GC, weak references, stabilisation,
   referential integrity. *)

open Pstore
open Helpers

(* -- heap ------------------------------------------------------------------- *)

let heap_alloc_and_access () =
  let store = fresh_store () in
  let s = Store.alloc_string store "hello" in
  let r = Store.alloc_record store "Point" [| Pvalue.Int 1l; Pvalue.Int 2l |] in
  let a = Store.alloc_array store "I" [| Pvalue.Int 10l |] in
  check_output "string" "hello" (Store.get_string store s);
  check_output "class" "Point" (Store.class_of store r);
  check_output "array class" "I[]" (Store.class_of store a);
  Alcotest.(check bool) "field" true (Pvalue.equal (Store.field store r 0) (Pvalue.Int 1l));
  Store.set_field store r 1 (Pvalue.Int 42l);
  check_bool "set field" true (Pvalue.equal (Store.field store r 1) (Pvalue.Int 42l));
  Store.set_elem store a 0 (Pvalue.Int 7l);
  check_bool "set elem" true (Pvalue.equal (Store.elem store a 0) (Pvalue.Int 7l));
  check_int "array length" 1 (Store.array_length store a);
  check_int "size" 3 (Store.size store)

let heap_bounds_checked () =
  let store = fresh_store () in
  let r = Store.alloc_record store "Point" [| Pvalue.Int 1l |] in
  let a = Store.alloc_array store "I" [| Pvalue.Int 1l |] in
  let expect_heap_error f =
    match f () with
    | _ -> Alcotest.fail "expected Heap_error"
    | exception Heap.Heap_error _ -> ()
  in
  expect_heap_error (fun () -> Store.field store r 1);
  expect_heap_error (fun () -> Store.set_field store r (-1) Pvalue.Null);
  expect_heap_error (fun () -> Store.elem store a 1);
  expect_heap_error (fun () -> Store.get_record store a);
  expect_heap_error (fun () -> Store.get_array store r);
  expect_heap_error (fun () -> Store.get store (Oid.of_int 999999))

let oids_are_distinct () =
  let store = fresh_store () in
  let oids = List.init 100 (fun i -> Store.alloc_string store (string_of_int i)) in
  let set = List.fold_left (fun acc oid -> Oid.Set.add oid acc) Oid.Set.empty oids in
  check_int "all distinct" 100 (Oid.Set.cardinal set)

(* -- roots ------------------------------------------------------------------- *)

let roots_basics () =
  let store = fresh_store () in
  let s = Store.alloc_string store "x" in
  Store.set_root store "a" (Pvalue.Ref s);
  Store.set_root store "b" (Pvalue.Int 1l);
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Store.root_names store);
  (match Store.root store "a" with
  | Some (Pvalue.Ref oid) -> check_bool "same oid" true (Oid.equal oid s)
  | _ -> Alcotest.fail "root a missing");
  Store.remove_root store "a";
  check_bool "removed" true (Store.root store "a" = None);
  Store.set_root store "b" (Pvalue.Int 2l);
  check_bool "rebound" true (Store.root store "b" = Some (Pvalue.Int 2l))

(* -- GC ------------------------------------------------------------------------ *)

let gc_collects_unreachable () =
  let store = fresh_store () in
  let live = Store.alloc_string store "live" in
  let _dead = Store.alloc_string store "dead" in
  Store.set_root store "live" (Pvalue.Ref live);
  let stats = Store.gc store in
  check_int "swept" 1 stats.Gc.swept;
  check_int "live" 1 stats.Gc.live;
  check_bool "live survives" true (Store.is_live store live)

let gc_traces_transitively () =
  let store = fresh_store () in
  let leaf = Store.alloc_string store "leaf" in
  let mid = Store.alloc_record store "Node" [| Pvalue.Ref leaf |] in
  let top = Store.alloc_record store "Node" [| Pvalue.Ref mid |] in
  Store.set_root store "top" (Pvalue.Ref top);
  let orphan = Store.alloc_record store "Node" [| Pvalue.Ref leaf |] in
  let stats = Store.gc store in
  check_int "one swept" 1 stats.Gc.swept;
  check_bool "leaf kept" true (Store.is_live store leaf);
  check_bool "orphan swept" false (Store.is_live store orphan)

let gc_handles_cycles () =
  let store = fresh_store () in
  let a = Store.alloc_record store "Node" [| Pvalue.Null |] in
  let b = Store.alloc_record store "Node" [| Pvalue.Ref a |] in
  Store.set_field store a 0 (Pvalue.Ref b);
  (* cycle a <-> b, unreachable *)
  let stats = Store.gc store in
  check_int "cycle swept" 2 stats.Gc.swept;
  (* reachable cycle survives *)
  let c = Store.alloc_record store "Node" [| Pvalue.Null |] in
  let d = Store.alloc_record store "Node" [| Pvalue.Ref c |] in
  Store.set_field store c 0 (Pvalue.Ref d);
  Store.set_root store "c" (Pvalue.Ref c);
  let stats2 = Store.gc store in
  check_int "none swept" 0 stats2.Gc.swept

let gc_honours_pins () =
  let store = fresh_store () in
  let pinned = Store.alloc_string store "pinned" in
  Store.add_pin store (fun () -> [ pinned ]);
  let stats = Store.gc store in
  check_int "nothing swept" 0 stats.Gc.swept;
  check_bool "pinned survives" true (Store.is_live store pinned)

(* -- weak references -------------------------------------------------------------- *)

let weak_cleared_when_target_dies () =
  let store = fresh_store () in
  let target = Store.alloc_string store "target" in
  let weak = Store.alloc_weak store (Pvalue.Ref target) in
  Store.set_root store "weak" (Pvalue.Ref weak);
  (* target reachable only weakly -> swept, cell cleared *)
  let stats = Store.gc store in
  check_int "weak cleared" 1 stats.Gc.weak_cleared;
  check_bool "target swept" false (Store.is_live store target);
  check_bool "cell nulled" true ((Store.get_weak store weak).Heap.target = Pvalue.Null)

let weak_kept_while_target_strongly_held () =
  let store = fresh_store () in
  let target = Store.alloc_string store "target" in
  let weak = Store.alloc_weak store (Pvalue.Ref target) in
  Store.set_root store "weak" (Pvalue.Ref weak);
  Store.set_root store "strong" (Pvalue.Ref target);
  let stats = Store.gc store in
  check_int "nothing cleared" 0 stats.Gc.weak_cleared;
  check_bool "target alive" true (Store.is_live store target);
  (match (Store.get_weak store weak).Heap.target with
  | Pvalue.Ref oid -> check_bool "still points" true (Oid.equal oid target)
  | _ -> Alcotest.fail "weak target lost");
  (* drop the strong root: next gc clears *)
  Store.remove_root store "strong";
  let stats2 = Store.gc store in
  check_int "cleared now" 1 stats2.Gc.weak_cleared

let weak_does_not_keep_target_alive () =
  let store = fresh_store () in
  (* a weak cell is itself collectable when unreachable *)
  let target = Store.alloc_string store "t" in
  let _weak = Store.alloc_weak store (Pvalue.Ref target) in
  let stats = Store.gc store in
  check_int "both swept" 2 stats.Gc.swept

(* -- stabilisation ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "pstore_test" ".img" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let image_roundtrip () =
  with_temp_file (fun path ->
      let store = fresh_store () in
      let s = Store.alloc_string store "persist me" in
      let r = Store.alloc_record store "Pair" [| Pvalue.Ref s; Pvalue.Double 3.25 |] in
      let a = Store.alloc_array store "LPair;" [| Pvalue.Ref r; Pvalue.Null |] in
      let w = Store.alloc_weak store (Pvalue.Ref s) in
      Store.set_root store "a" (Pvalue.Ref a);
      Store.set_root store "w" (Pvalue.Ref w);
      Store.set_blob store "meta" "blob-bytes";
      Store.stabilise ~path store;
      let store2 = Store.open_file path in
      check_int "same size" (Store.size store) (Store.size store2);
      check_output "string preserved" "persist me" (Store.get_string store2 s);
      check_output "class preserved" "Pair" (Store.class_of store2 r);
      check_bool "field preserved" true
        (Pvalue.equal (Store.field store2 r 1) (Pvalue.Double 3.25));
      check_bool "blob preserved" true (Store.blob store2 "meta" = Some "blob-bytes");
      (match (Store.get_weak store2 w).Heap.target with
      | Pvalue.Ref oid -> check_bool "weak target preserved" true (Oid.equal oid s)
      | _ -> Alcotest.fail "weak lost");
      (* oids preserved verbatim: allocating continues from the next id *)
      let fresh = Store.alloc_string store2 "fresh" in
      check_bool "fresh oid distinct" false (List.mem fresh [ s; r; a; w ]))

(* v2 images localise damage: a flipped byte inside one object's payload
   quarantines that object on reopen (reads get a typed error, siblings
   stay readable), while corruption the per-entry frames cannot localise
   (the header) still fails the whole load. *)
let image_detects_corruption () =
  with_temp_file (fun path ->
      let store = fresh_store () in
      let victim = Store.alloc_string store "sentinel-victim-payload" in
      let sibling = Store.alloc_string store "healthy neighbour" in
      Store.set_root store "sib" (Pvalue.Ref sibling);
      Store.stabilise ~path store;
      let read_image () =
        let ic = open_in_bin path in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        data
      in
      let write_image data =
        let oc = open_out_bin path in
        output_string oc data;
        close_out oc
      in
      let pristine = read_image () in
      (* flip a byte inside the victim's payload *)
      let needle = "sentinel-victim-payload" in
      let off =
        let rec find i =
          if i + String.length needle > String.length pristine then
            Alcotest.fail "sentinel not found in image"
          else if String.equal (String.sub pristine i (String.length needle)) needle then i
          else find (i + 1)
        in
        find 0
      in
      let corrupted = Bytes.of_string pristine in
      Bytes.set corrupted off (Char.chr (Char.code (Bytes.get corrupted off) lxor 0xff));
      write_image (Bytes.unsafe_to_string corrupted);
      let store2 = Store.open_file path in
      check_bool "victim quarantined" true (Store.is_quarantined store2 victim);
      check_int "only the victim" 1 (List.length (Store.quarantined store2));
      check_output "sibling readable" "healthy neighbour" (Store.get_string store2 sibling);
      (match Store.get store2 victim with
      | _ -> Alcotest.fail "expected Quarantined"
      | exception Quarantine.Quarantined _ -> ());
      (* header corruption cannot be localised: the load fails outright *)
      let headerless = Bytes.of_string pristine in
      Bytes.set headerless 0 '!';
      write_image (Bytes.unsafe_to_string headerless);
      match Store.open_file path with
      | _ -> Alcotest.fail "expected Image_error"
      | exception Image.Image_error _ -> ())

let image_rejects_bad_magic () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTASTORE-AT-ALL-0123456789";
      close_out oc;
      match Store.open_file path with
      | _ -> Alcotest.fail "expected Image_error"
      | exception Image.Image_error _ -> ())

let stabilise_requires_backing () =
  let store = fresh_store () in
  match Store.stabilise store with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* -- journalled durability ----------------------------------------------------------- *)

let with_store_files f =
  let path = Filename.temp_file "pstore_wal" ".img" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; Journal.path_for path; path ^ ".tmp" ])
    (fun () -> f path)

let journalled_roundtrip () =
  with_store_files (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      let s = Store.alloc_string store "persist me" in
      Store.set_root store "s" (Pvalue.Ref s);
      Store.stabilise ~path store;
      (* the first stabilise compacts: full image plus a fresh journal *)
      check_int "compacted once" 1 (Store.stats store).Store.compactions;
      Store.set_root store "n" (Pvalue.Int 5l);
      Store.set_blob store "b" "bytes";
      Store.stabilise store;
      (* the second only appends the two-record delta *)
      check_int "two records" 2 (Store.stats store).Store.journal_depth;
      check_int "still one compaction" 1 (Store.stats store).Store.compactions;
      Store.close store;
      let store2 = Store.open_file path in
      check_bool "journalled on reopen" true (Store.durability store2 = Store.Journalled);
      check_int "replayed" 2 (Store.stats store2).Store.journal_replayed;
      check_output "string preserved" "persist me" (Store.get_string store2 s);
      check_bool "root preserved" true (Store.root store2 "n" = Some (Pvalue.Int 5l));
      check_bool "blob preserved" true (Store.blob store2 "b" = Some "bytes");
      Integrity.check_exn store2;
      Store.close store2)

let journal_compaction_bounds_depth () =
  with_store_files (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      Store.configure store { (Store.config store) with Store.Config.compaction_limit = 10 };
      Store.stabilise ~path store;
      for i = 1 to 50 do
        Store.set_root store "x" (Pvalue.Int (Int32.of_int i));
        Store.stabilise store;
        check_bool "depth bounded by the limit" true
          ((Store.stats store).Store.journal_depth <= 10)
      done;
      check_bool "compacted periodically" true ((Store.stats store).Store.compactions > 1);
      Store.close store;
      let s2 = Store.open_file path in
      check_bool "final value durable" true (Store.root s2 "x" = Some (Pvalue.Int 50l));
      Store.close s2)

let rollback_truncates_journal () =
  with_store_files (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      let keep = Store.alloc_string store "keep" in
      Store.set_root store "keep" (Pvalue.Ref keep);
      Store.stabilise ~path store;
      Store.set_root store "pre" (Pvalue.Int 1l);
      Store.stabilise store;
      let fp_before = Image.encode (Store.contents store) in
      let wal_size () = (Unix.stat (Journal.path_for path)).Unix.st_size in
      let size_before = wal_size () in
      let result =
        Store.with_rollback store (fun () ->
            Store.set_root store "mid" (Pvalue.Int 2l);
            (* stabilising INSIDE the transaction appends journal records;
               the abort must cut them back off the disk *)
            Store.stabilise store;
            ignore (Store.alloc_string store "junk");
            Store.stabilise store;
            failwith "abort")
      in
      (match result with
      | Error (Failure _) -> ()
      | _ -> Alcotest.fail "expected abort");
      check_output "memory restored" fp_before (Image.encode (Store.contents store));
      check_int "journal truncated to its savepoint" size_before (wal_size ());
      (* the on-disk journal replays to the pre-transaction state *)
      let replica = Store.open_file path in
      check_output "disk replays to pre-transaction state" fp_before
        (Image.encode (Store.contents replica));
      check_bool "mid root not on disk" true (Store.root replica "mid" = None);
      Store.close replica;
      (* and the survivor keeps journalling correctly after the abort *)
      Store.set_root store "post" (Pvalue.Int 3l);
      Store.stabilise store;
      let s2 = Store.open_file path in
      check_bool "post-abort stabilise durable" true (Store.root s2 "post" = Some (Pvalue.Int 3l));
      check_bool "aborted root still gone" true (Store.root s2 "mid" = None);
      Integrity.check_exn s2;
      Store.close s2;
      Store.close store)

let rollback_restores_after_gc_compaction_refused () =
  with_store_files (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      let junk = Store.alloc_string store "junk" in
      Store.stabilise ~path store;
      let result =
        Store.with_rollback store (fun () ->
            (* the sweep removes [junk] behind the journal's back, so the
               next stabilise would need a compaction — which cannot be
               undone by an abort and is therefore refused in here *)
            ignore (Store.gc store);
            Store.stabilise store)
      in
      (match result with
      | Error (Invalid_argument _) -> ()
      | _ -> Alcotest.fail "expected Invalid_argument");
      check_bool "swept object restored by the abort" true (Store.is_live store junk);
      (* at top level the deferred compaction goes through *)
      ignore (Store.gc store);
      Store.stabilise store;
      check_bool "compacted at top level" true ((Store.stats store).Store.compactions >= 2);
      Store.close store)

let rollback_defers_over_limit_compaction () =
  with_store_files (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      Store.configure store { (Store.config store) with Store.Config.compaction_limit = 0 };
      Store.stabilise ~path store;
      let compactions () = (Store.stats store).Store.compactions in
      let before = compactions () in
      let result =
        Store.with_rollback store (fun () ->
            Store.set_root store "x" (Pvalue.Int 1l);
            (* over the limit, but inside a transaction: append, don't compact *)
            Store.stabilise store)
      in
      check_bool "committed" true (result = Ok ());
      check_int "no compaction inside the transaction" before (compactions ());
      check_int "delta appended instead" 1 (Store.stats store).Store.journal_depth;
      (* the next top-level stabilise catches up *)
      Store.stabilise store;
      check_int "compacted at top level" (before + 1) (compactions ());
      check_int "journal reset" 0 (Store.stats store).Store.journal_depth;
      Store.close store)

(* -- integrity -------------------------------------------------------------------------- *)

let integrity_clean_store () =
  let store = fresh_store () in
  let s = Store.alloc_string store "x" in
  Store.set_root store "s" (Pvalue.Ref s);
  Alcotest.(check int) "no violations" 0 (List.length (Integrity.check store));
  Integrity.check_exn store

let integrity_detects_dangling () =
  let store = fresh_store () in
  let s = Store.alloc_string store "x" in
  let r = Store.alloc_record store "Holder" [| Pvalue.Ref s |] in
  Store.set_root store "r" (Pvalue.Ref r);
  (* brutally remove s behind the store's back *)
  Heap.remove (Store.heap store) s;
  check_int "one violation" 1 (List.length (Integrity.check store));
  (match Integrity.check_exn store with
  | _ -> Alcotest.fail "expected Heap_error"
  | exception Heap.Heap_error _ -> ())

let integrity_detects_bad_root () =
  let store = fresh_store () in
  let s = Store.alloc_string store "x" in
  Store.set_root store "s" (Pvalue.Ref s);
  Heap.remove (Store.heap store) s;
  match Integrity.check store with
  | [ Integrity.Bad_root { name; _ } ] -> check_output "root name" "s" name
  | other -> Alcotest.failf "expected one Bad_root, got %d violations" (List.length other)

let suite =
  [
    test "heap alloc and access" heap_alloc_and_access;
    test "heap bounds are checked" heap_bounds_checked;
    test "oids are distinct" oids_are_distinct;
    test "roots basics" roots_basics;
    test "gc collects unreachable" gc_collects_unreachable;
    test "gc traces transitively" gc_traces_transitively;
    test "gc handles cycles" gc_handles_cycles;
    test "gc honours pins" gc_honours_pins;
    test "weak cleared when target dies" weak_cleared_when_target_dies;
    test "weak kept while strongly held" weak_kept_while_target_strongly_held;
    test "weak does not keep target alive" weak_does_not_keep_target_alive;
    test "image round trip" image_roundtrip;
    test "journalled round trip" journalled_roundtrip;
    test "compaction bounds the journal" journal_compaction_bounds_depth;
    test "rollback truncates the journal" rollback_truncates_journal;
    test "rollback restores a gc'd store; compaction refused inside"
      rollback_restores_after_gc_compaction_refused;
    test "rollback defers over-limit compaction" rollback_defers_over_limit_compaction;
    test "image detects corruption" image_detects_corruption;
    test "image rejects bad magic" image_rejects_bad_magic;
    test "stabilise requires a backing file" stabilise_requires_backing;
    test "integrity: clean store" integrity_clean_store;
    test "integrity: dangling reference" integrity_detects_dangling;
    test "integrity: bad root" integrity_detects_bad_root;
  ]

(* -- properties ---------------------------------------------------------------- *)

(* Random object graphs: build N records with random references, pick
   random roots. *)
type graph_spec = {
  nodes : int;
  edges : (int * int) list; (* from node, to node *)
  roots : int list;
}

let graph_gen =
  QCheck2.Gen.(
    let* nodes = int_range 1 40 in
    let* edges =
      list_size (int_range 0 80) (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1)))
    in
    let* roots = list_size (int_range 0 5) (int_range 0 (nodes - 1)) in
    return { nodes; edges; roots })

let build_graph store spec =
  let slots_of i = List.length (List.filter (fun (f, _) -> f = i) spec.edges) in
  let oids =
    Array.init spec.nodes (fun i ->
        Store.alloc_record store "Node" (Array.make (max 1 (slots_of i)) Pvalue.Null))
  in
  let next_slot = Array.make spec.nodes 0 in
  List.iter
    (fun (f, t) ->
      Store.set_field store oids.(f) next_slot.(f) (Pvalue.Ref oids.(t));
      next_slot.(f) <- next_slot.(f) + 1)
    spec.edges;
  List.iteri (fun i r -> Store.set_root store (Printf.sprintf "r%d" i) (Pvalue.Ref oids.(r))) spec.roots;
  oids

(* Reference reachability computed naively. *)
let reachable_naive spec =
  let adj = Array.make spec.nodes [] in
  List.iter (fun (f, t) -> adj.(f) <- t :: adj.(f)) spec.edges;
  let seen = Array.make spec.nodes false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit adj.(i)
    end
  in
  List.iter visit spec.roots;
  seen

let prop_gc_matches_naive_reachability =
  QCheck2.Test.make ~name:"gc keeps exactly the reachable objects" ~count:200 graph_gen
    (fun spec ->
      let store = fresh_store () in
      let oids = build_graph store spec in
      ignore (Store.gc store);
      let expected = reachable_naive spec in
      let ok = ref true in
      Array.iteri
        (fun i oid -> if Store.is_live store oid <> expected.(i) then ok := false)
        oids;
      !ok)

let prop_image_roundtrip_preserves_graph =
  QCheck2.Test.make ~name:"stabilise/recover preserves the heap exactly" ~count:100 graph_gen
    (fun spec ->
      let store = fresh_store () in
      let oids = build_graph store spec in
      let data = Image.encode { Image.heap = Store.heap store; roots = Store.roots store; blobs = Hashtbl.create 1; quarantine = Quarantine.create () } in
      let recovered = Image.decode data in
      Array.for_all
        (fun oid ->
          match Heap.find recovered.Image.heap oid, Heap.find (Store.heap store) oid with
          | Some (Heap.Record a), Some (Heap.Record b) ->
            a.Heap.class_name = b.Heap.class_name
            && Array.for_all2 Pvalue.equal a.Heap.fields b.Heap.fields
          | _ -> false)
        oids
      && Heap.size recovered.Image.heap = Heap.size (Store.heap store))

let prop_integrity_holds_after_gc =
  QCheck2.Test.make ~name:"integrity holds after gc" ~count:100 graph_gen (fun spec ->
      let store = fresh_store () in
      ignore (build_graph store spec);
      ignore (Store.gc store);
      Integrity.check store = [])

let props =
  [
    QCheck_alcotest.to_alcotest prop_gc_matches_naive_reachability;
    QCheck_alcotest.to_alcotest prop_image_roundtrip_preserves_graph;
    QCheck_alcotest.to_alcotest prop_integrity_holds_after_gc;
  ]

(* Pvalue binary codec round trip. *)
let pvalue_gen =
  QCheck2.Gen.(
    oneof
      [
        return Pvalue.Null;
        map (fun b -> Pvalue.Bool b) bool;
        map (fun n -> Pvalue.byte (n mod 128)) (int_range (-127) 127);
        map (fun n -> Pvalue.short n) (int_range (-32768) 32767);
        map (fun n -> Pvalue.char n) (int_range 0 0xffff);
        map (fun n -> Pvalue.Int n) int32;
        map (fun n -> Pvalue.Long n) int64;
        map (fun f -> Pvalue.Double f) float;
        map (fun n -> Pvalue.Ref (Oid.of_int (abs n))) int;
      ])

let prop_pvalue_roundtrip =
  QCheck2.Test.make ~name:"store values round-trip the binary codec" ~count:500 pvalue_gen
    (fun v ->
      let w = Codec.writer () in
      Pvalue.encode w v;
      let r = Codec.reader (Codec.contents w) in
      let back = Pvalue.decode r in
      Pvalue.equal v back && Codec.at_end r)

let props = props @ [ QCheck_alcotest.to_alcotest prop_pvalue_roundtrip ]
