(* Shared test fixtures — see test/support/support.ml, the one home for
   helpers that used to be copied per-suite. *)

include Test_support.Support
