(* The scriptable shell: drive a whole session through the command
   language and check the store afterwards. *)

open Pstore
open Minijava
open Helpers

(* Run a shell script over a fresh store file; returns (stdout, path).
   The caller removes the file. *)
let run_script ?(keep = false) script =
  let store_path = Filename.temp_file "shell" ".hpj" in
  Sys.remove store_path;
  (* seed the store with Person + two roots *)
  let store = Store.create () in
  let vm = Boot.boot_fresh store in
  Hyperprog.Dynamic_compiler.install vm;
  compile_into vm [ person_source ];
  Store.set_root store "vangelis" (new_person vm "vangelis");
  Store.set_root store "mary" (new_person vm "mary");
  Store.stabilise ~path:store_path store;
  (* feed the script through a real channel *)
  let script_path = Filename.temp_file "script" ".txt" in
  let oc = open_out script_path in
  output_string oc script;
  close_out oc;
  let ic = open_in script_path in
  (* capture stdout *)
  let stdout_backup = Unix.dup Unix.stdout in
  let out_path = Filename.temp_file "shellout" ".txt" in
  let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  Unix.dup2 out_fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 stdout_backup Unix.stdout;
      Unix.close stdout_backup;
      Unix.close out_fd;
      close_in ic;
      Sys.remove script_path)
    (fun () -> Hyperui.Shell.run ~store_path ~input:ic ~echo:false);
  let ic2 = open_in out_path in
  let output = really_input_string ic2 (in_channel_length ic2) in
  close_in ic2;
  Sys.remove out_path;
  if not keep then Sys.remove store_path;
  (output, store_path)

let marry_script =
  "edit MarryExample\n\
   type public class MarryExample {\\n  public static void main(String[] args) {\\n    \n\
   link method Person.marry\n\
   type (\n\
   link root vangelis\n\
   type , \n\
   link root mary\n\
   type );\\n  }\\n}\\n\n\
   show\n\
   go\n\
   save marry\n\
   quit\n"

let full_composition () =
  let output, store_path = run_script ~keep:true marry_script in
  Fun.protect
    ~finally:(fun () -> Sys.remove store_path)
    (fun () ->
      check_bool "editor opened" true (contains output "editor 1 open");
      check_bool "buttons rendered" true (contains output "[Person.marry]");
      check_bool "ran" true (contains output "ran MarryExample.main");
      check_bool "saved" true (contains output "saved as root marry");
      (* the store on disk reflects everything: marriage + saved program *)
      let store = Store.open_file store_path in
      let vm = Boot.vm_for store in
      let vangelis = Option.get (Store.root store "vangelis") in
      let spouse = Vm.call_virtual vm ~recv:vangelis ~name:"getSpouse" ~desc:"()LPerson;" [] in
      check_bool "marriage persisted" true (spouse <> Pvalue.Null);
      match Store.root store "marry" with
      | Some (Pvalue.Ref hp) ->
        check_output "program persisted" "MarryExample"
          (Hyperprog.Storage_form.class_name vm hp)
      | _ -> Alcotest.fail "saved hyper-program missing")

let browse_and_insert_by_row () =
  let script =
    "edit T\n\
     type public class T { Object o = ; }\n\
     cursor 0 28\n\
     browse root vangelis\n\
     row 1 loc\n\
     compile\n\
     quit\n"
  in
  let output, _ = run_script script in
  check_bool "location link inserted" true (contains output "inserted field");
  check_bool "compiled" true (contains output "compiled T")

let errors_are_reported () =
  let script = "edit Bad\ntype public class Bad { int x = \"zzz\"; }\ncompile\nquit\n" in
  let output, _ = run_script script in
  check_bool "error surfaced" true (contains output "error:");
  check_bool "in hyper-program terms" true (contains output "in the hyper-program")

let scrub_and_health_report () =
  let script = "scrub 100000\nhealth\nquit\n" in
  let output, _ = run_script script in
  check_bool "scrub reports a scan" true (contains output "scanned");
  check_bool "big budget drains the pass" true (contains output "(pass complete)");
  check_bool "health shows the quarantine" true (contains output "quarantined: 0");
  check_bool "health shows store retries" true (contains output "io retries absorbed");
  check_bool "health shows retry totals" true (contains output "retry totals:")

let unknown_commands_are_safe () =
  let script = "frobnicate\nhelp\nroots\nquit\n" in
  let output, _ = run_script script in
  check_bool "unknown reported" true (contains output "unknown command frobnicate");
  check_bool "help shown" true (contains output "commands:");
  check_bool "roots listed" true (contains output "vangelis")

let suite =
  [
    test "full composition through the shell" full_composition;
    test "browse and insert by row" browse_and_insert_by_row;
    test "compile errors are reported" errors_are_reported;
    test "scrub and health report" scrub_and_health_report;
    test "unknown commands are safe" unknown_commands_are_safe;
  ]

let props = []
