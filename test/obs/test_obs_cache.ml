(* Observability of the hot-path caches: the cache-hit / cache-miss /
   group-commit op classes added for the caching layer.  Counters are
   monotone, hits + misses account for every cache lookup, and — as for
   every other op class — the tracing-off path records no latency and
   no trace events. *)

open Pstore
open Hyperprog
open Obs_util

let password = Registry.built_in_password

let vm_with_hp () =
  let store, vm = fresh_hyper_vm () in
  let hp, _, _ = marry_example vm in
  let uid = Registry.add_hp vm ~password hp in
  (store, vm, uid)

let hits_plus_misses_equal_lookups () =
  let store, vm, uid = vm_with_hp () in
  let obs = Store.obs store in
  let lookups = 17 in
  for i = 1 to lookups do
    ignore (Registry.try_get_link vm ~password ~hp:uid ~link:(i mod 4))
  done;
  let hit = Obs.count obs Obs.Cache_hit in
  let miss = Obs.count obs Obs.Cache_miss in
  check_int "hit + miss = getLink lookups" lookups (hit + miss);
  check_int "the span counter agrees" lookups (Obs.count obs Obs.Get_link);
  check_bool "warm loop actually hit" true (hit > miss)

let compile_cache_accounts_too () =
  let store, vm = fresh_hyper_vm () in
  let obs = Store.obs store in
  let src = "public class ObsK { public static int v() { return 5; } }" in
  ignore (Dynamic_compiler.compile_strings vm ~names:[ "ObsK" ] [ src ]);
  ignore (Dynamic_compiler.compile_strings vm ~names:[ "ObsK" ] [ src ]);
  check_int "one miss then one hit" 1 (Obs.count obs Obs.Cache_miss);
  check_int "the repeat hit" 1 (Obs.count obs Obs.Cache_hit);
  check_int "exactly one real compile" 1 (Obs.count obs Obs.Compile)

let counters_are_monotone () =
  let store, vm, uid = vm_with_hp () in
  let obs = Store.obs store in
  let last = ref (-1) in
  for i = 0 to 9 do
    ignore (Registry.try_get_link vm ~password ~hp:uid ~link:(i mod 3));
    let total = Obs.count obs Obs.Cache_hit + Obs.count obs Obs.Cache_miss in
    check_bool "each lookup advances hit+miss" true (total > !last);
    last := total
  done

let group_commit_counted_per_batch () =
  with_store_file (fun path ->
      let config =
        {
          Store.Config.default with
          Store.Config.durability = Store.Journalled;
          group_window = 4;
          backing = Some path;
        }
      in
      let store = Store.create ~config () in
      let obs = Store.obs store in
      let a = Store.alloc_record store "A" [| Pvalue.Int 0l; Pvalue.Null |] in
      Store.set_root store "a" (Pvalue.Ref a);
      Store.stabilise store (* compaction, not a batch *);
      check_int "no batches yet" 0 (Obs.count obs Obs.Group_commit);
      for i = 1 to 3 do
        (* multi-op delta: one batch record per stabilise *)
        Store.set_field store a 0 (Pvalue.Int (Int32.of_int i));
        Store.set_blob store "b" (string_of_int i);
        Store.stabilise store
      done;
      check_int "one group-commit per batched stabilise" 3
        (Obs.count obs Obs.Group_commit);
      (* a single-op delta keeps the legacy framing: no batch counted *)
      Store.set_field store a 0 (Pvalue.Int 99l);
      Store.stabilise store;
      check_int "single-op deltas are not batches" 3 (Obs.count obs Obs.Group_commit);
      check_bool "appends were counted alongside" true
        (Obs.count obs Obs.Journal_append >= 4);
      Store.close store)

let new_ops_have_names_and_order () =
  (* every new op renders, and all_ops appends at the end so existing
     counts-order expectations are unchanged *)
  check_output "cache-hit name" "cache-hit" (Obs.op_name Obs.Cache_hit);
  check_output "cache-miss name" "cache-miss" (Obs.op_name Obs.Cache_miss);
  check_output "group-commit name" "group-commit" (Obs.op_name Obs.Group_commit);
  check_output "net-request name" "net-request" (Obs.op_name Obs.Net_request);
  check_output "net-error name" "net-error" (Obs.op_name Obs.Net_error);
  match List.rev Obs.all_ops with
  | Obs.Net_error :: Obs.Net_request :: Obs.Conflict :: Obs.Session_commit :: Obs.Degraded_op
    :: Obs.Repair :: Obs.Group_commit :: Obs.Cache_miss :: Obs.Cache_hit :: _ -> ()
  | _ -> Alcotest.fail "new op classes must sit at the end of all_ops"

let tracing_off_path_unchanged () =
  let store, vm, uid = vm_with_hp () in
  let obs = Store.obs store in
  Obs.clear_events obs;
  check_bool "tracing starts off" false (Obs.enabled obs);
  for i = 0 to 7 do
    ignore (Registry.try_get_link vm ~password ~hp:uid ~link:(i mod 2))
  done;
  check_bool "counters advanced" true (Obs.count obs Obs.Cache_hit > 0);
  check_int "no trace events while tracing is off" 0 (List.length (Obs.events obs));
  check_bool "no latency recorded for the cached lookups" true
    (Obs.latency obs Obs.Get_link = None);
  (* flip tracing on: the same path now records spans *)
  Obs.set_enabled obs true;
  ignore (Registry.try_get_link vm ~password ~hp:uid ~link:0);
  check_bool "tracing on records the span" true (Obs.latency obs Obs.Get_link <> None)

let suite =
  [
    test "hits + misses account for every lookup" hits_plus_misses_equal_lookups;
    test "the compile cache reports through the same counters" compile_cache_accounts_too;
    test "cache counters are monotone" counters_are_monotone;
    test "group commits are counted per batch record" group_commit_counted_per_batch;
    test "new op classes render and extend all_ops at the end" new_ops_have_names_and_order;
    test "the tracing-off path is unchanged" tracing_off_path_unchanged;
  ]
