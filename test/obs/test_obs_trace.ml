(* The trace ring and latency histograms: bounded, ordered, and a strict
   no-op while tracing is disabled. *)

open Pstore
open Obs_util

let disabled_tracing_is_a_noop () =
  let store = Store.create () in
  let obs = Store.obs store in
  let a = Store.alloc_record store "A" [| Pvalue.Int 0l |] in
  for i = 1 to 100 do
    Store.set_field store a 0 (Pvalue.Int (Int32.of_int i))
  done;
  check_int "no events captured" 0 (List.length (Obs.events obs));
  check_bool "no latency recorded" true (Obs.latency obs Obs.Set = None);
  check_int "but every op still counted" 100 (Obs.count obs Obs.Set);
  (* record is also a no-op when disabled *)
  Obs.record obs Obs.Get 123.0;
  check_bool "record ignored while disabled" true (Obs.latency obs Obs.Get = None)

let ring_is_bounded_and_ordered () =
  let obs = Obs.create ~ring_capacity:8 () in
  Obs.set_enabled obs true;
  for i = 1 to 20 do
    Obs.record obs Obs.Get ~label:(string_of_int i) 1.0
  done;
  let evs = Obs.events obs in
  check_int "ring keeps the last 8" 8 (List.length evs);
  let labels = List.map (fun e -> e.Obs.label) evs in
  check_output "oldest surviving event" "13" (List.hd labels);
  check_output "newest event" "20" (List.nth labels 7);
  let seqs = List.map (fun e -> e.Obs.seq) evs in
  check_bool "sequence numbers are in order" true (seqs = List.sort compare seqs)

let zero_capacity_ring_keeps_histograms () =
  let obs = Obs.create ~ring_capacity:0 () in
  Obs.set_enabled obs true;
  Obs.record obs Obs.Get 5.0;
  check_int "no events with a zero ring" 0 (List.length (Obs.events obs));
  match Obs.latency obs Obs.Get with
  | Some l -> check_int "histogram still records" 1 l.Obs.timed
  | None -> Alcotest.fail "histogram must record with a zero-capacity ring"

let span_times_counts_and_survives_raise () =
  let obs = Obs.create () in
  Obs.set_enabled obs true;
  let v = Obs.span obs Obs.Compile ~label:"x" (fun () -> 42) in
  check_int "value passes through" 42 v;
  check_int "span counted" 1 (Obs.count obs Obs.Compile);
  (match Obs.latency obs Obs.Compile with
  | Some l -> check_int "span timed" 1 l.Obs.timed
  | None -> Alcotest.fail "span must time while tracing");
  (try ignore (Obs.span obs Obs.Compile (fun () -> failwith "boom") : int)
   with Failure _ -> ());
  check_int "raising span still counted" 2 (Obs.count obs Obs.Compile);
  (match Obs.latency obs Obs.Compile with
  | Some l -> check_int "raising span still timed" 2 l.Obs.timed
  | None -> Alcotest.fail "raising span must time");
  match Obs.events obs with
  | [ a; b ] ->
    check_output "label captured" "x" a.Obs.label;
    check_bool "durations are non-negative" true
      (a.Obs.duration_ns >= 0. && b.Obs.duration_ns >= 0.)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let latency_percentiles_are_ordered () =
  let obs = Obs.create () in
  Obs.set_enabled obs true;
  (* a known distribution: 1..100 ns *)
  for i = 1 to 100 do
    Obs.record obs Obs.Get (float_of_int i)
  done;
  match Obs.latency obs Obs.Get with
  | None -> Alcotest.fail "latency must be available"
  | Some l ->
    check_int "all samples timed" 100 l.Obs.timed;
    check_bool "p50 is the median" true (l.Obs.p50_ns = 50.);
    check_bool "p99 near the top" true (l.Obs.p99_ns = 99.);
    check_bool "max is the max" true (l.Obs.max_ns = 100.);
    check_bool "ordered" true (l.Obs.p50_ns <= l.Obs.p99_ns && l.Obs.p99_ns <= l.Obs.max_ns)

let reset_zeroes_everything () =
  let obs = Obs.create () in
  Obs.set_enabled obs true;
  Obs.record obs Obs.Get 1.0;
  Obs.incr obs Obs.Set;
  Obs.reset obs;
  check_int "counters zeroed" 0 (Obs.total obs);
  check_bool "histograms zeroed" true (Obs.latency obs Obs.Get = None);
  check_int "ring cleared" 0 (List.length (Obs.events obs));
  check_bool "tracing switch is kept" true (Obs.enabled obs)

let pp_event_is_readable () =
  let obs = Obs.create () in
  Obs.set_enabled obs true;
  Obs.record obs Obs.Image_save ~bytes:512 ~label:"img" 1500.0;
  match Obs.events obs with
  | [ e ] ->
    let s = Format.asprintf "%a" Obs.pp_event e in
    check_bool "names the op" true (contains s "image-save");
    check_bool "shows the bytes" true (contains s "512B");
    check_bool "shows the label" true (contains s "img")
  | _ -> Alcotest.fail "expected one event"

let suite =
  [
    test "disabled tracing is a no-op" disabled_tracing_is_a_noop;
    test "the ring is bounded and ordered" ring_is_bounded_and_ordered;
    test "a zero-capacity ring keeps histograms" zero_capacity_ring_keeps_histograms;
    test "span times, counts, and survives a raise" span_times_counts_and_survives_raise;
    test "latency percentiles are ordered" latency_percentiles_are_ordered;
    test "reset zeroes everything" reset_zeroes_everything;
    test "events print readably" pp_event_is_readable;
  ]
