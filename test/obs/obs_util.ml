(* Shared helpers for the observability suites — see
   test/support/support.ml. *)

include Test_support.Support

let with_store_file f = with_store_file ~prefix:"obs" f
