(* Shared helpers for the observability suites. *)

let check_output = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || go (i + 1)
  in
  go 0

let with_store_file f =
  let path = Filename.temp_file "obs" ".hpj" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".wal"; path ^ ".tmp" ])
    (fun () -> f path)
