let () =
  Alcotest.run "observability"
    [
      ("counters", Test_obs_counters.suite);
      ("tracing", Test_obs_trace.suite);
      ("config", Test_obs_config.suite);
      ("failures", Test_obs_failure.suite);
      ("cache ops", Test_obs_cache.suite);
    ]
