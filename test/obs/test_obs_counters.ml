(* Operation counters: always on, monotonic, and with the close/crash
   protocol — close seals a final snapshot, crash drops in-flight trace
   state, and a reopened store starts with fresh metrics. *)

open Pstore
open Obs_util

let counters_count_operations () =
  let store = Store.create () in
  let obs = Store.obs store in
  check_int "fresh store has served nothing" 0 (Obs.total obs);
  let a = Store.alloc_record store "A" [| Pvalue.Int 1l |] in
  check_int "alloc counted" 1 (Obs.count obs Obs.Alloc);
  ignore (Store.get store a);
  ignore (Store.field store a 0);
  check_int "reads counted" 2 (Obs.count obs Obs.Get);
  Store.set_field store a 0 (Pvalue.Int 2l);
  check_int "write counted" 1 (Obs.count obs Obs.Set);
  Store.set_root store "a" (Pvalue.Ref a);
  ignore (Store.root store "a");
  check_int "root lookup counted" 1 (Obs.count obs Obs.Root_lookup);
  (* counts lists nonzero classes only, in declaration order *)
  let names = List.map (fun (op, _) -> Obs.op_name op) (Obs.counts obs) in
  check_bool "set before alloc in op order" true
    (names = [ "get"; "set"; "alloc"; "root-lookup" ])

let quarantine_hits_are_counted () =
  let store = Store.create () in
  let a = Store.alloc_string store "x" in
  Store.quarantine_oid store a "bit rot (test)";
  (try ignore (Store.get store a) with Quarantine.Quarantined _ -> ());
  (match Store.try_get store a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "quarantined read must fail");
  check_int "both refusals counted" 2 (Obs.count (Store.obs store) Obs.Quarantine_hit)

let monotonic_across_stabilise_and_reopen () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      let a = Store.alloc_record store "A" [| Pvalue.Int 1l |] in
      Store.set_root store "a" (Pvalue.Ref a);
      let before = Obs.total (Store.obs store) in
      Store.stabilise ~path store;
      check_bool "stabilise only increases the totals" true
        (Obs.total (Store.obs store) > before);
      let obs = Store.obs store in
      check_int "stabilise counted" 1 (Obs.count obs Obs.Stabilise);
      check_bool "first stabilise compacts" true (Obs.count obs Obs.Compaction >= 1);
      check_bool "compaction saves an image" true (Obs.count obs Obs.Image_save >= 1);
      Store.set_field store a 0 (Pvalue.Int 2l);
      Store.stabilise store;
      check_bool "delta rides the journal" true (Obs.count obs Obs.Journal_append >= 1);
      (* close seals the final snapshot... *)
      Store.close store;
      (match Obs.final_snapshot obs with
      | Some snap ->
        check_int "snapshot freezes the totals" (Obs.total obs) snap.Obs.at_total;
        check_bool "snapshot keeps the counts" true (snap.Obs.final_counts = Obs.counts obs)
      | None -> Alcotest.fail "close must seal a snapshot");
      (* ...and reopening builds fresh metrics: only the recovery work *)
      let reopened = Store.open_file path in
      let robs = Store.obs reopened in
      check_bool "reopened store is not carrying old counters" true
        (Obs.total robs < Obs.total obs);
      check_bool "recovery counted its image load" true (Obs.count robs Obs.Image_load >= 1);
      check_bool "no snapshot yet on the reopened store" true (Obs.final_snapshot robs = None);
      Store.close reopened)

let close_flushes_and_crash_drops () =
  let store = Store.create () in
  let obs = Store.obs store in
  Obs.set_enabled obs true;
  ignore (Store.alloc_string store "x");
  check_bool "span captured while tracing" true (Obs.events obs <> []);
  Store.crash store;
  check_int "crash drops the ring" 0 (List.length (Obs.events obs));
  check_bool "crash does not snapshot" true (Obs.final_snapshot obs = None);
  check_bool "crash stops tracing" true (not (Obs.enabled obs));
  check_bool "counters survive for forensics" true (Obs.total obs > 0);
  (* close after crash is safe and seals the snapshot *)
  Store.close store;
  (match Obs.final_snapshot obs with
  | Some snap -> check_int "sealed totals" (Obs.total obs) snap.Obs.at_total
  | None -> Alcotest.fail "close must seal");
  (* flush is idempotent *)
  let t1 = Obs.final_snapshot obs in
  Store.close store;
  check_bool "second close is harmless" true (Obs.final_snapshot obs = t1)

let suite =
  [
    test "every operation class is counted" counters_count_operations;
    test "quarantine refusals are counted" quarantine_hits_are_counted;
    test "counters are monotonic across stabilise and reopen"
      monotonic_across_stabilise_and_reopen;
    test "close flushes, crash drops" close_flushes_and_crash_drops;
  ]
