(* The unified Store.Config record — the only way to retune a live
   store: incremental single-knob updates compose, the record
   round-trips, and an explicit config is authoritative over recovery on
   open_file. *)

open Pstore
open Obs_util

let incremental_updates_compose () =
  (* three one-knob [{ config with ... }] updates land on the same state
     as one whole-record configure *)
  let stepwise = Store.create () in
  Store.configure stepwise { (Store.config stepwise) with Store.Config.durability = Store.Journalled };
  Store.configure stepwise { (Store.config stepwise) with Store.Config.compaction_limit = 128 };
  Store.configure stepwise { (Store.config stepwise) with Store.Config.retry = (Some Retry.default_policy) };
  let unified = Store.create () in
  Store.configure unified
    {
      Store.Config.durability = Store.Journalled;
      compaction_limit = 128;
      group_window = 1;
      retry = Some Retry.default_policy;
      retry_overrides = [];
      breaker = Store.Config.default.Store.Config.breaker;
      salvage_degrade = Store.Config.default.Store.Config.salvage_degrade;
      backing = None;
      trace_ring = Obs.default_ring_capacity;
      tracing = false;
      shards = 1;
    };
  check_bool "three one-knob updates equal one record" true
    (Store.config stepwise = Store.config unified)

let configure_config_is_identity () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.configure store { (Store.config store) with Store.Config.backing = Some path };
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      Store.configure store { (Store.config store) with Store.Config.retry = (Some Retry.default_policy) };
      let before = Store.config store in
      Store.configure store before;
      check_bool "configure (config s) changes nothing" true
        (Store.config store = before);
      check_bool "backing round-trips" true
        (before.Store.Config.backing = Some path))

let default_config_leaves_backing_alone () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.configure store { (Store.config store) with Store.Config.backing = Some path };
      Store.configure store Store.Config.default;
      check_bool "backing = None means keep, not clear" true
        (Store.backing store = Some path))

let open_file_config_wins_over_recovery () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      let a = Store.alloc_record store "A" [| Pvalue.Int 1l |] in
      Store.set_root store "a" (Pvalue.Ref a);
      Store.stabilise ~path store;
      Store.close store;
      (* default open recovers the journalled mode from the WAL... *)
      let recovered = Store.open_file path in
      check_bool "recovery restores journalled mode" true
        (Store.durability recovered = Store.Journalled);
      Store.close recovered;
      (* ...but an explicit config is applied after recovery, so it wins *)
      let overridden =
        Store.open_file
          ~config:{ Store.Config.default with durability = Store.Snapshot }
          path
      in
      check_bool "explicit config overrides the recovered mode" true
        (Store.durability overridden = Store.Snapshot);
      Store.close overridden)

let construction_config_reaches_obs () =
  let store =
    Store.create
      ~config:{ Store.Config.default with tracing = true; trace_ring = 4 }
      ()
  in
  let obs = Store.obs store in
  check_bool "tracing enabled at construction" true (Obs.enabled obs);
  check_int "ring capacity applied" 4 (Obs.ring_capacity obs);
  for _ = 1 to 10 do
    ignore (Store.alloc_string store "x")
  done;
  check_int "ring bounded by the configured capacity" 4
    (List.length (Obs.events obs));
  (* and the config reads back what the obs state says *)
  let c = Store.config store in
  check_bool "tracing reads back" true c.Store.Config.tracing;
  check_int "ring reads back" 4 c.Store.Config.trace_ring

let suite =
  [
    test "incremental one-knob updates compose" incremental_updates_compose;
    test "configure (config s) is the identity" configure_config_is_identity;
    test "the default config leaves backing alone" default_config_leaves_backing_alone;
    test "open_file applies an explicit config after recovery"
      open_file_config_wins_over_recovery;
    test "construction config reaches the observability state"
      construction_config_reaches_obs;
  ]
