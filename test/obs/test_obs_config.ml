(* The unified Store.Config record: equivalent to the legacy per-knob
   setters, round-trippable, and authoritative over recovery on
   open_file. *)

open Pstore
open Obs_util

let config_matches_legacy_setters () =
  let legacy = Store.create () in
  Store.set_durability legacy Store.Journalled;
  Store.set_compaction_limit legacy 128;
  Store.set_retry_policy legacy (Some Retry.default_policy);
  let unified = Store.create () in
  Store.configure unified
    {
      Store.Config.durability = Store.Journalled;
      compaction_limit = 128;
      group_window = 1;
      retry = Some Retry.default_policy;
      retry_overrides = [];
      breaker = Store.Config.default.Store.Config.breaker;
      salvage_degrade = Store.Config.default.Store.Config.salvage_degrade;
      backing = None;
      trace_ring = Obs.default_ring_capacity;
      tracing = false;
      shards = 1;
    };
  check_bool "one record equals four setter calls" true
    (Store.config legacy = Store.config unified)

let configure_config_is_identity () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.set_backing store path;
      Store.set_durability store Store.Journalled;
      Store.set_retry_policy store (Some Retry.default_policy);
      let before = Store.config store in
      Store.configure store before;
      check_bool "configure (config s) changes nothing" true
        (Store.config store = before);
      check_bool "backing round-trips" true
        (before.Store.Config.backing = Some path))

let default_config_leaves_backing_alone () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.set_backing store path;
      Store.configure store Store.Config.default;
      check_bool "backing = None means keep, not clear" true
        (Store.backing store = Some path))

let open_file_config_wins_over_recovery () =
  with_store_file (fun path ->
      let store = Store.create () in
      Store.set_durability store Store.Journalled;
      let a = Store.alloc_record store "A" [| Pvalue.Int 1l |] in
      Store.set_root store "a" (Pvalue.Ref a);
      Store.stabilise ~path store;
      Store.close store;
      (* default open recovers the journalled mode from the WAL... *)
      let recovered = Store.open_file path in
      check_bool "recovery restores journalled mode" true
        (Store.durability recovered = Store.Journalled);
      Store.close recovered;
      (* ...but an explicit config is applied after recovery, so it wins *)
      let overridden =
        Store.open_file
          ~config:{ Store.Config.default with durability = Store.Snapshot }
          path
      in
      check_bool "explicit config overrides the recovered mode" true
        (Store.durability overridden = Store.Snapshot);
      Store.close overridden)

let construction_config_reaches_obs () =
  let store =
    Store.create
      ~config:{ Store.Config.default with tracing = true; trace_ring = 4 }
      ()
  in
  let obs = Store.obs store in
  check_bool "tracing enabled at construction" true (Obs.enabled obs);
  check_int "ring capacity applied" 4 (Obs.ring_capacity obs);
  for _ = 1 to 10 do
    ignore (Store.alloc_string store "x")
  done;
  check_int "ring bounded by the configured capacity" 4
    (List.length (Obs.events obs));
  (* and the config reads back what the obs state says *)
  let c = Store.config store in
  check_bool "tracing reads back" true c.Store.Config.tracing;
  check_int "ring reads back" 4 c.Store.Config.trace_ring

let suite =
  [
    test "a config record equals the legacy setters" config_matches_legacy_setters;
    test "configure (config s) is the identity" configure_config_is_identity;
    test "the default config leaves backing alone" default_config_leaves_backing_alone;
    test "open_file applies an explicit config after recovery"
      open_file_config_wins_over_recovery;
    test "construction config reaches the observability state"
      construction_config_reaches_obs;
  ]
