(* The unified typed failure: try_get / try_field return the same
   Failure.t the registry's try_get_link uses, with stable wording from
   Failure.describe. *)

open Pstore
open Obs_util

let try_get_reports_quarantine () =
  let store = Store.create () in
  let a = Store.alloc_string store "precious" in
  Store.quarantine_oid store a "checksum mismatch (test)";
  match Store.try_get store a with
  | Error (Failure.Quarantined { oid; reason }) ->
    check_int "carries the oid" (Oid.to_int a) (Oid.to_int oid);
    check_output "carries the reason" "checksum mismatch (test)" reason
  | Ok _ -> Alcotest.fail "quarantined oid must not read"
  | Error e -> Alcotest.failf "wrong failure: %s" (Failure.describe e)

let try_get_reports_dangling () =
  let store = Store.create () in
  match Store.try_get store (Oid.of_int 9999) with
  | Error (Failure.Dangling oid) -> check_int "names the oid" 9999 (Oid.to_int oid)
  | Ok _ -> Alcotest.fail "a dangling oid must not read"
  | Error e -> Alcotest.failf "wrong failure: %s" (Failure.describe e)

let try_field_reports_bad_index () =
  let store = Store.create () in
  let a = Store.alloc_record store "Holder" [| Pvalue.Int 1l |] in
  (match Store.try_field store a 0 with
  | Ok (Pvalue.Int 1l) -> ()
  | _ -> Alcotest.fail "in-range field must read");
  match Store.try_field store a 7 with
  | Error (Failure.Bad_index { container; index }) ->
    check_output "names the class" "Holder" container;
    check_int "names the index" 7 index
  | Ok _ -> Alcotest.fail "out-of-range field must not read"
  | Error e -> Alcotest.failf "wrong failure: %s" (Failure.describe e)

let describe_wording_is_stable () =
  check_output "quarantined"
    "quarantined @7: bit rot"
    (Failure.describe (Failure.Quarantined { oid = Oid.of_int 7; reason = "bit rot" }));
  check_output "dangling" "dangling reference @9"
    (Failure.describe (Failure.Dangling (Oid.of_int 9)));
  check_output "collected" "hyper-program 3 has been garbage collected"
    (Failure.describe (Failure.Collected 3));
  check_output "bad index" "no index 4 in Person"
    (Failure.describe (Failure.Bad_index { container = "Person"; index = 4 }))

let suite =
  [
    test "try_get reports quarantine as data" try_get_reports_quarantine;
    test "try_get reports dangling references" try_get_reports_dangling;
    test "try_field reports a bad index" try_field_reports_bad_index;
    test "describe wording is stable" describe_wording_is_stable;
  ]
