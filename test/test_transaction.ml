(* Transactions: commit keeps effects, abort restores the whole store —
   including live schema evolution (the paper's Section 7 scenario). *)

open Pstore
open Minijava
open Hyperprog
open Helpers

let rollback_restores_everything () =
  let store = fresh_store () in
  let keep = Store.alloc_string store "keep" in
  Store.set_root store "keep" (Pvalue.Ref keep);
  Store.set_blob store "blob" "original";
  let before_size = Store.size store in
  let result =
    Store.with_rollback store (fun () ->
        ignore (Store.alloc_string store "junk1");
        Store.set_root store "junk" (Pvalue.Ref (Store.alloc_string store "junk2"));
        Store.set_blob store "blob" "overwritten";
        Store.remove_root store "keep";
        failwith "abort")
  in
  (match result with
  | Error (Failure _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected abort");
  check_int "size restored" before_size (Store.size store);
  check_bool "root restored" true (Store.root store "keep" = Some (Pvalue.Ref keep));
  check_bool "junk root gone" true (Store.root store "junk" = None);
  check_bool "blob restored" true (Store.blob store "blob" = Some "original");
  check_output "string intact" "keep" (Store.get_string store keep);
  Integrity.check_exn store

let rollback_commit_keeps_effects () =
  let store = fresh_store () in
  let result =
    Store.with_rollback store (fun () ->
        let s = Store.alloc_string store "committed" in
        Store.set_root store "s" (Pvalue.Ref s);
        42)
  in
  check_bool "ok" true (result = Ok 42);
  check_bool "effect kept" true (Store.root store "s" <> None)

let transact_commit () =
  let store = fresh_store () in
  ignore (Transaction.fresh_vm store);
  match
    Transaction.transact store (fun vm ->
        compile_into vm [ person_source ];
        let p = new_person vm "tina" in
        Store.set_root store "tina" p;
        "done")
  with
  | Transaction.Committed ("done", vm) ->
    (* the committed VM keeps working over the shared store *)
    let tina = Option.get (Store.root store "tina") in
    let name = Vm.call_virtual vm ~recv:tina ~name:"getName" ~desc:"()Ljava.lang.String;" [] in
    check_output "usable after commit" "tina" (Rt.ocaml_string vm name)
  | Transaction.Committed _ -> Alcotest.fail "wrong value"
  | Transaction.Aborted (e, _) -> Alcotest.failf "aborted: %s" (Printexc.to_string e)

let transact_abort_restores_classes_and_data () =
  let store = fresh_store () in
  let vm0 = Transaction.fresh_vm store in
  compile_into vm0 [ person_source ];
  let p = new_person vm0 "zara" in
  Store.set_root store "zara" p;
  let before_census = Browser.Graph.census store in
  match
    Transaction.transact store (fun vm ->
        (* make a mess, then fail *)
        compile_into vm [ "public class Mess { public static int junk; }" ];
        ignore (new_person vm "ghost1");
        ignore (new_person vm "ghost2");
        Store.set_root store "zara" Pvalue.Null;
        failwith "transaction body fails")
  with
  | Transaction.Committed _ -> Alcotest.fail "expected abort"
  | Transaction.Aborted (_, vm) ->
    check_bool "Mess class rolled back" false (Rt.is_loaded vm "Mess");
    check_bool "Person still loaded" true (Rt.is_loaded vm "Person");
    let zara = Option.get (Store.root store "zara") in
    check_bool "root restored" true (zara <> Pvalue.Null);
    let name = Vm.call_virtual vm ~recv:zara ~name:"getName" ~desc:"()Ljava.lang.String;" [] in
    check_output "object usable via the fresh VM" "zara" (Rt.ocaml_string vm name);
    Alcotest.(check (list (pair string int))) "census unchanged" before_census
      (Browser.Graph.census store)

let live_evolution_commits () =
  let store = fresh_store () in
  let vm0 = Transaction.fresh_vm store in
  compile_into vm0 [ "public class Evo { public int n; }" ];
  let o = Vm.new_instance vm0 ~cls:"Evo" ~desc:"()V" [] in
  Store.set_root store "o" o;
  Store.set_field store (oid_of o) (Rt.field_slot vm0 "Evo" "n") (Pvalue.Int 5l);
  match
    Transaction.evolve store ~class_name:"Evo"
      ~new_source:"public class Evo { public long n; public int extra; }" ()
  with
  | Transaction.Committed (result, vm) ->
    check_int "instances" 1 result.Evolution.instances_updated;
    let n = Store.field store (oid_of o) (Rt.field_slot vm "Evo" "n") in
    check_bool "widened" true (Pvalue.equal n (Pvalue.Long 5L))
  | Transaction.Aborted (e, _) -> Alcotest.failf "aborted: %s" (Printexc.to_string e)

let live_evolution_aborts_cleanly () =
  let store = fresh_store () in
  let vm0 = Transaction.fresh_vm store in
  compile_into vm0 [ "public class Evo { public int n; }" ];
  let o = Vm.new_instance vm0 ~cls:"Evo" ~desc:"()V" [] in
  Store.set_root store "o" o;
  Store.set_field store (oid_of o) (Rt.field_slot vm0 "Evo" "n") (Pvalue.Int 7l);
  (* the converter divides by zero on the first instance: the evolution
     must roll back wholesale *)
  match
    Transaction.evolve store ~class_name:"Evo"
      ~new_source:"public class Evo { public int n; public int derived; }"
      ~converter:
        "public class Conv { public static void convert(Evo e) { int z = 0; e.derived = e.n / z; } }"
      ()
  with
  | Transaction.Committed _ -> Alcotest.fail "expected abort"
  | Transaction.Aborted (_, vm) ->
    (* old schema back: no `derived` field, value intact, no archive *)
    let n = Store.field store (oid_of o) (Rt.field_slot vm "Evo" "n") in
    check_bool "value intact" true (Pvalue.equal n (Pvalue.Int 7l));
    expect_jerror "java.lang.NoSuchFieldError" (fun () ->
        ignore (Rt.field_slot vm "Evo" "derived"));
    check_int "no archived version" 0 (List.length (Evolution.archived_versions vm "Evo"));
    check_bool "converter class rolled back" false (Rt.is_loaded vm "Conv")

(* -- transactions over a journalled store ----------------------------------- *)

let with_backing f =
  let path = Filename.temp_file "txn_wal" ".img" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; Journal.path_for path; path ^ ".tmp" ])
    (fun () -> f path)

(* A committed transaction on a journalled, backed store is durable
   without anyone calling stabilise: the commit barrier fsyncs the
   delta to the journal — and pays no compaction for it. *)
let journalled_commit_is_durable () =
  with_backing (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      ignore (Transaction.fresh_vm store);
      Store.stabilise ~path store;
      let compactions_before = (Store.stats store).Store.compactions in
      (match Transaction.transact store (fun _vm -> Store.set_root store "t" (Pvalue.Int 9l)) with
      | Transaction.Committed (_, _) -> ()
      | Transaction.Aborted (e, _) -> Alcotest.failf "aborted: %s" (Printexc.to_string e));
      check_int "commit barrier appends, never compacts" compactions_before
        (Store.stats store).Store.compactions;
      let replica = Store.open_file path in
      check_bool "committed root durable with no explicit stabilise" true
        (Store.root replica "t" = Some (Pvalue.Int 9l));
      Store.close replica;
      Store.close store)

(* An aborted transaction must leave the on-disk journal replayable to
   the pre-transaction state — even when the transaction body itself
   stabilised part of its work into the journal. *)
let journalled_abort_leaves_replayable_journal () =
  with_backing (fun path ->
      let store = fresh_store () in
      Store.configure store { (Store.config store) with Store.Config.durability = Store.Journalled };
      ignore (Transaction.fresh_vm store);
      let keep = Store.alloc_string store "keep" in
      Store.set_root store "keep" (Pvalue.Ref keep);
      Store.stabilise ~path store;
      let fp_before = Image.encode (Store.contents store) in
      (match
         Transaction.transact store (fun _vm ->
             Store.set_root store "temp" (Pvalue.Int 1l);
             Store.stabilise store;
             ignore (Store.alloc_string store "junk");
             failwith "boom")
       with
      | Transaction.Aborted (Failure _, _) -> ()
      | Transaction.Aborted (e, _) -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | Transaction.Committed _ -> Alcotest.fail "expected abort");
      check_output "memory restored" fp_before (Image.encode (Store.contents store));
      let replica = Store.open_file path in
      check_output "journal replays to pre-transaction state" fp_before
        (Image.encode (Store.contents replica));
      check_bool "stabilised-then-aborted root gone from disk" true
        (Store.root replica "temp" = None);
      check_bool "pre-transaction root intact" true
        (Store.root replica "keep" = Some (Pvalue.Ref keep));
      Integrity.check_exn replica;
      Store.close replica;
      Store.close store)

let suite =
  [
    test "rollback restores heap, roots and blobs" rollback_restores_everything;
    test "successful body commits" rollback_commit_keeps_effects;
    test "transact: commit" transact_commit;
    test "transact: abort restores classes and data" transact_abort_restores_classes_and_data;
    test "live evolution in a transaction commits" live_evolution_commits;
    test "live evolution aborts cleanly" live_evolution_aborts_cleanly;
    test "journalled commit is durable via the barrier" journalled_commit_is_durable;
    test "journalled abort leaves a replayable journal" journalled_abort_leaves_replayable_journal;
  ]

let props = []
