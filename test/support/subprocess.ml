(* Alcotest-flavoured wrappers over the workload library's subprocess
   driver: every E2E suite drives the real bin/hpjava binary through
   these, never the in-process APIs — the point of the E2E layer is
   that it can only observe what a user at a prompt could. *)

let bin = lazy (Workload.Subproc.locate ())

let hpjava ?env ?stdin_text ?timeout_s args =
  Workload.Subproc.run ?env ?stdin_text ?timeout_s ~bin:(Lazy.force bin) args

(* -- assertions ------------------------------------------------------------ *)

let expect_ok (r : Workload.Subproc.result) =
  if not (Workload.Subproc.ok r) then
    Alcotest.failf "expected success:\n%s" (Workload.Subproc.describe r)

(* Any nonzero exit is a correct failure report; a signal or a zero exit
   is not.  [stderr_has] additionally pins the one-line message. *)
let expect_fail ?stderr_has (r : Workload.Subproc.result) =
  (match Workload.Subproc.exit_code r with
  | Some 0 -> Alcotest.failf "expected a nonzero exit:\n%s" (Workload.Subproc.describe r)
  | Some _ -> ()
  | None -> Alcotest.failf "expected a nonzero exit, not a signal:\n%s" (Workload.Subproc.describe r));
  if String.trim r.Workload.Subproc.stderr = "" then
    Alcotest.failf "failure carried no stderr message:\n%s" (Workload.Subproc.describe r);
  match stderr_has with
  | Some needle when not (Workload.Subproc.contains r.Workload.Subproc.stderr needle) ->
    Alcotest.failf "stderr does not mention %S:\n%s" needle (Workload.Subproc.describe r)
  | _ -> ()

let expect_killed ~signal (r : Workload.Subproc.result) =
  match Workload.Subproc.signalled r with
  | Some s when s = signal -> ()
  | _ -> Alcotest.failf "expected death by signal %d:\n%s" signal (Workload.Subproc.describe r)

let expect_stdout_has (r : Workload.Subproc.result) needle =
  if not (Workload.Subproc.contains r.Workload.Subproc.stdout needle) then
    Alcotest.failf "stdout does not mention %S:\n%s" needle (Workload.Subproc.describe r)

let expect_stdout_lacks (r : Workload.Subproc.result) needle =
  if Workload.Subproc.contains r.Workload.Subproc.stdout needle then
    Alcotest.failf "stdout unexpectedly mentions %S:\n%s" needle (Workload.Subproc.describe r)
