(* The shared test-support library: one home for the fixtures that used
   to be copied between the main suite and the crash / scrub / obs
   sub-suites (each is its own dune unit, so plain modules were not
   visible across them).  The per-suite helper modules remain as
   [include]-shims over this one. *)

open Pstore
open Minijava

(* -- Alcotest shorthands -------------------------------------------------- *)

let check_output = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test name f = Alcotest.test_case name `Quick f

(* -- string helpers ------------------------------------------------------- *)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || go (i + 1)
  in
  go 0

let index_of haystack needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length haystack then
      Alcotest.failf "%S not found in %S" needle haystack
    else if String.sub haystack i n = needle then i
    else go (i + 1)
  in
  go 0

(* -- files and scratch directories ---------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let file_size path = (Unix.stat path).Unix.st_size

(* Remove a tree, shrugging off whatever a crashed or fault-injected test
   left behind: unreadable entries, files that vanish mid-walk, dangling
   temp artifacts.  Cleanup must never turn a passing suite red. *)
let rec rm_rf path =
  let kind = try Some (Unix.lstat path).Unix.st_kind with Unix.Unix_error _ -> None in
  match kind with
  | Some Unix.S_DIR ->
    Array.iter
      (fun f -> rm_rf (Filename.concat path f))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | Some _ -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ()

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let with_dir ?(prefix = "store") f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let copy_dir src dst =
  Unix.mkdir dst 0o700;
  Array.iter
    (fun f -> write_file (Filename.concat dst f) (read_file (Filename.concat src f)))
    (Sys.readdir src)

let temp_store_path ?(prefix = "store") () =
  let path = Filename.temp_file prefix ".hpj" in
  Sys.remove path;
  path

(* Every on-disk artifact a store at [path] can leave: the image, its
   journal, and in-flight temporaries (a crash mid-stabilise leaves
   [.tmp] files behind). *)
let remove_store_artifacts path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  Array.iter
    (fun f ->
      if String.starts_with ~prefix:base f then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let with_store_file ?prefix f =
  let path = temp_store_path ?prefix () in
  Fun.protect ~finally:(fun () -> remove_store_artifacts path) (fun () -> f path)

(* -- store fingerprints --------------------------------------------------- *)

(* A deterministic byte-exact digest of everything persistent: heap
   (sorted by oid, next-oid counter included), roots, blobs.  Two stores
   with equal fingerprints agree on all reachable state and oid identity. *)
let fingerprint store = Image.encode (Store.contents store)

(* As {!fingerprint}, but blind to blob keys matching [drop] — used by the
   differential cache suite, where the compile cache's [hyper.ccache:*]
   blobs are the one legitimate divergence between a cached and a cold
   store. *)
let fingerprint_filtered ~drop store =
  let c = Store.contents store in
  let blobs = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> if not (drop k) then Hashtbl.replace blobs k v) c.Image.blobs;
  Image.encode { c with Image.blobs }

(* -- scrubbing ------------------------------------------------------------ *)

(* Drive the scrubber until it reports a completed pass, collecting every
   newly quarantined oid along the way. *)
let scrub_pass ?(budget = 512) store =
  let quarantined = ref [] in
  let finished = ref false in
  let steps = ref 0 in
  while not !finished do
    incr steps;
    if !steps > 100_000 then Alcotest.fail "scrubber never completed a pass";
    let r = Store.scrub ~budget store in
    quarantined := !quarantined @ r.Scrub.newly_quarantined;
    if r.Scrub.pass_complete then finished := true
  done;
  !quarantined

(* -- VM fixtures ---------------------------------------------------------- *)

let fresh_store () = Store.create ()

(* A freshly booted VM over a fresh store. *)
let fresh_vm () =
  let store = fresh_store () in
  let vm = Boot.boot_fresh store in
  (store, vm)

(* A VM with the hyper-programming runtime installed. *)
let fresh_hyper_vm () =
  let store, vm = fresh_vm () in
  Hyperprog.Dynamic_compiler.install vm;
  (store, vm)

let compile_into vm sources = ignore (Jcompiler.compile_and_load vm sources)

(* Compile and run `Main.main([])`, returning captured System output. *)
let run_program ?(cls = "Main") vm sources =
  compile_into vm sources;
  Vm.run_main vm ~cls [];
  Rt.take_output vm

(* Compile and run a statement block wrapped in a main method. *)
let run_body vm body =
  run_program vm
    [ "public class Main { public static void main(String[] args) {\n" ^ body ^ "\n} }" ]

let person_source =
  {|public class Person {
  private String name;
  private Person spouse;
  public Person(String n) { name = n; }
  public String getName() { return name; }
  public Person getSpouse() { return spouse; }
  public static void marry(Person a, Person b) { a.spouse = b; b.spouse = a; }
  public String toString() { return "Person(" + name + ")"; }
}
|}

let new_person vm name =
  Vm.new_instance vm ~cls:"Person" ~desc:"(Ljava.lang.String;)V" [ Rt.jstring vm name ]

let oid_of = function
  | Pvalue.Ref oid -> oid
  | v -> Alcotest.failf "expected a reference, got %s" (Pvalue.to_string v)

(* Build the MarryExample hyper-program (the paper's Figure 5: a method
   link and two object links) over two fresh persons; returns
   (hp oid, vangelis value, mary value). *)
let marry_example vm =
  compile_into vm [ person_source ];
  let vangelis = new_person vm "vangelis" in
  let mary = new_person vm "mary" in
  let text =
    "public class MarryExample {\n  public static void main(String[] args) {\n    (, );\n  }\n}\n"
  in
  let base = index_of text "(, );" in
  let links =
    [
      {
        Hyperprog.Storage_form.link =
          Hyperprog.Hyperlink.L_static_method
            { cls = "Person"; name = "marry"; desc = "(LPerson;LPerson;)V" };
        label = "Person.marry";
        pos = base;
      };
      {
        Hyperprog.Storage_form.link = Hyperprog.Hyperlink.L_object (oid_of vangelis);
        label = "vangelis";
        pos = base + 1;
      };
      {
        Hyperprog.Storage_form.link = Hyperprog.Hyperlink.L_object (oid_of mary);
        label = "mary";
        pos = base + 3;
      };
    ]
  in
  let hp = Hyperprog.Storage_form.create vm ~class_name:"MarryExample" ~text ~links in
  (hp, vangelis, mary)

(* -- expectation helpers -------------------------------------------------- *)

(* Expect a Java-level error of the given class. *)
let expect_jerror jclass f =
  match f () with
  | _ -> Alcotest.failf "expected %s, but no error was raised" jclass
  | exception Rt.Jerror { jclass = actual; _ } ->
    Alcotest.(check string) "error class" jclass actual

(* Expect a compile error. *)
let expect_compile_error f =
  match f () with
  | _ -> Alcotest.fail "expected a compile error"
  | exception Jcompiler.Compile_error _ -> ()
