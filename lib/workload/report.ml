(* The BENCH_macro.json emitter.

   Same contract as bench/pstore_bench.ml's BENCH_pstore.json: a
   machine-readable trajectory, self-validated after writing (re-read,
   structural check) so a malformed emitter can never silently pollute
   the committed baseline, and consumed by bench/bench_gate.ml for the
   p50 regression gate.

   Sections are end-to-end op classes (one hpjava subprocess each:
   process start to exit), so the latencies here are what a user at a
   prompt actually waits — dominated by store open + boot, which is
   precisely the whole-system cost micro-benchmarks cannot see.  Two
   exceptions: the [session-commit] section is the in-process latency of
   [Store.Session.commit] parsed from shell transcripts, and the
   top-level [commit_conflicts] counts commits refused
   first-committer-wins.  The [recovery] object records the
   injected-crash outcome: how long the first
   reopen-plus-integrity-check took and how much debris it found. *)

type section = {
  name : string;
  count : int;
  ops_per_sec : float;
  p50_ns : float;
  p99_ns : float;
}

type recovery = {
  injected : bool;
  killed : bool;
  crashed_class : string;
  kill_byte : int;
  recovery_ms : float;
  repair_ms : float;  (* the post-recovery `repair all` operator session *)
  degraded_ops : int;  (* operations that hit demoted shards *)
  quarantined_after : int;
  lost_roots : int;
}

(* The many-client server slice (lib/workload/netload.ml): wire-protocol
   RTT sections ride in [sections] as net-* entries; the headline
   connection figures and the contended-commit outcome live here. *)
type net = {
  net_clients : int;
  net_rounds : int;
  net_connections : int;
  connections_per_sec : float;
  net_commits : int;
  net_conflicts : int;  (* typed conflict frames answered (first committer wins) *)
  net_errors : int;  (* typed error frames answered *)
}

type t = {
  smoke : bool;
  seed : int;
  users : int;
  total_ops : int;
  elapsed_s : float;
  sustained_ops_per_sec : float;
  commit_conflicts : int;
      (* session commits refused first-committer-wins across the play *)
  sections : section list;
  recovery : recovery;
  net : net option;
}

let no_recovery =
  {
    injected = false;
    killed = false;
    crashed_class = "";
    kill_byte = 0;
    recovery_ms = 0.;
    repair_ms = 0.;
    degraded_ops = 0;
    quarantined_after = 0;
    lost_roots = 0;
  }

(* -- building from a play --------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

(* One section per op class present in the play.  The process killed by
   the crash injector is excluded — its truncated lifetime is not a
   latency.  Order: by first appearance, so the file is stable across
   runs of the same scenario. *)
let sections_of_play (play : Scenario.play) =
  let order = ref [] in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Scenario.exec) ->
      let killed =
        match play.Scenario.crash with
        | Some c -> c.Scenario.step_index = e.Scenario.index && c.Scenario.killed
        | None -> false
      in
      if not killed then begin
        let cls = Scenario.op_class e.Scenario.step.Scenario.op in
        let bucket =
          match Hashtbl.find_opt samples cls with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.add samples cls b;
            order := cls :: !order;
            b
        in
        bucket := (e.Scenario.result.Subproc.elapsed_s *. 1e9) :: !bucket
      end)
    play.Scenario.execs;
  List.rev !order
  |> List.map (fun cls ->
         let ns = Array.of_list !(Hashtbl.find samples cls) in
         Array.sort compare ns;
         let total_s = Array.fold_left (fun acc x -> acc +. (x /. 1e9)) 0. ns in
         {
           name = cls;
           count = Array.length ns;
           ops_per_sec = float_of_int (Array.length ns) /. Float.max total_s 1e-9;
           p50_ns = percentile ns 0.50;
           p99_ns = percentile ns 0.99;
         })

(* Unlike the subprocess-lifetime sections above, [session-commit] is an
   IN-PROCESS latency: the shell times [Store.Session.commit] itself
   (validate + conflict check + journalled apply), parsed out of the
   shell transcripts.  Absent when the play ran no session scripts. *)
let session_commit_section (play : Scenario.play) =
  match play.Scenario.commit_us with
  | [] -> []
  | us ->
    let ns = Array.of_list (List.map (fun u -> u *. 1e3) us) in
    Array.sort compare ns;
    let total_s = Array.fold_left (fun acc x -> acc +. (x /. 1e9)) 0. ns in
    [
      {
        name = "session-commit";
        count = Array.length ns;
        ops_per_sec = float_of_int (Array.length ns) /. Float.max total_s 1e-9;
        p50_ns = percentile ns 0.50;
        p99_ns = percentile ns 0.99;
      };
    ]

(* One section from raw nanosecond samples — how the netload RTT classes
   enter the same sections array (and so the same p50 gate) as the
   subprocess op classes. *)
let section_of_ns ~name ns_list =
  let ns = Array.of_list ns_list in
  Array.sort compare ns;
  let total_s = Array.fold_left (fun acc x -> acc +. (x /. 1e9)) 0. ns in
  {
    name;
    count = Array.length ns;
    ops_per_sec = float_of_int (Array.length ns) /. Float.max total_s 1e-9;
    p50_ns = percentile ns 0.50;
    p99_ns = percentile ns 0.99;
  }

let net_of_load (load : Netload.result) =
  {
    net_clients = load.Netload.clients;
    net_rounds = load.Netload.rounds;
    net_connections = load.Netload.connections;
    connections_per_sec = Netload.connections_per_sec load;
    net_commits = load.Netload.commits;
    net_conflicts = load.Netload.conflicts;
    net_errors = load.Netload.errors;
  }

let net_sections_of_load (load : Netload.result) =
  List.filter_map
    (fun (op, ns) -> if ns = [] then None else Some (section_of_ns ~name:op ns))
    load.Netload.samples

let of_play ~smoke (play : Scenario.play) =
  let recovery =
    match play.Scenario.crash with
    | None -> no_recovery
    | Some c ->
      {
        injected = true;
        killed = c.Scenario.killed;
        crashed_class = c.Scenario.crashed_class;
        kill_byte = c.Scenario.kill_byte;
        recovery_ms = c.Scenario.recovery_s *. 1e3;
        repair_ms = c.Scenario.repair_s *. 1e3;
        degraded_ops = c.Scenario.degraded_ops;
        quarantined_after = c.Scenario.quarantined_after;
        lost_roots = List.length c.Scenario.lost_roots;
      }
  in
  let total_ops = List.length play.Scenario.execs in
  {
    smoke;
    seed = play.Scenario.scenario.Scenario.seed;
    users = play.Scenario.scenario.Scenario.users;
    total_ops;
    elapsed_s = play.Scenario.elapsed_s;
    sustained_ops_per_sec = float_of_int total_ops /. Float.max play.Scenario.elapsed_s 1e-9;
    commit_conflicts = play.Scenario.commit_conflicts;
    sections = sections_of_play play @ session_commit_section play;
    recovery;
    net = None;
  }

(* -- JSON out ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"benchmark\": \"macro\",\n";
  add "  \"schema_version\": 1,\n";
  add "  \"smoke\": %b,\n" t.smoke;
  add "  \"seed\": %d,\n" t.seed;
  add "  \"users\": %d,\n" t.users;
  add "  \"total_ops\": %d,\n" t.total_ops;
  add "  \"elapsed_s\": %.3f,\n" t.elapsed_s;
  add "  \"sustained_ops_per_sec\": %.2f,\n" t.sustained_ops_per_sec;
  add "  \"commit_conflicts\": %d,\n" t.commit_conflicts;
  add "  \"sections\": [\n";
  List.iteri
    (fun i s ->
      add
        "    { \"name\": \"%s\", \"count\": %d, \"ops_per_sec\": %.2f, \"p50_ns\": %.1f, \
         \"p99_ns\": %.1f }%s\n"
        (json_escape s.name) s.count s.ops_per_sec s.p50_ns s.p99_ns
        (if i < List.length t.sections - 1 then "," else ""))
    t.sections;
  add "  ],\n";
  add
    "  \"recovery\": { \"injected\": %b, \"killed\": %b, \"crashed_class\": \"%s\", \
     \"kill_byte\": %d, \"recovery_ms\": %.2f, \"repair_ms\": %.2f, \"degraded_ops\": %d, \
     \"quarantined_after\": %d, \"lost_roots\": %d }\n"
    t.recovery.injected t.recovery.killed (json_escape t.recovery.crashed_class)
    t.recovery.kill_byte t.recovery.recovery_ms t.recovery.repair_ms t.recovery.degraded_ops
    t.recovery.quarantined_after t.recovery.lost_roots;
  (match t.net with
  | None -> add "  ,\"net\": null\n"
  | Some n ->
    add
      "  ,\"net\": { \"clients\": %d, \"rounds\": %d, \"connections\": %d, \
       \"connections_per_sec\": %.2f, \"commits\": %d, \"conflicts\": %d, \"errors\": %d }\n"
      n.net_clients n.net_rounds n.net_connections n.connections_per_sec n.net_commits
      n.net_conflicts n.net_errors);
  add "}\n";
  Buffer.contents buf

(* -- self-validation ---------------------------------------------------------- *)

(* Structural re-read of the emitted file: balanced braces/brackets
   outside strings plus every key the gate and the trajectory consumers
   rely on.  A tripwire, not a JSON parser. *)
let validate_file ~path t =
  let data = Subproc.read_file path in
  let depth = ref 0 and in_string = ref false and escaped = ref false in
  let balanced = ref true in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_string then begin
        if c = '\\' then escaped := true else if c = '"' then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then balanced := false
        | _ -> ())
    data;
  let missing =
    List.filter
      (fun k -> not (Subproc.contains data k))
      ([
         "\"benchmark\": \"macro\"";
         "\"sections\"";
         "\"recovery\"";
         "\"sustained_ops_per_sec\"";
         "\"recovery_ms\"";
         "\"repair_ms\"";
         "\"degraded_ops\"";
         "\"quarantined_after\"";
         "\"commit_conflicts\"";
         "\"net\"";
       ]
      @ (if t.net = None then [] else [ "\"connections_per_sec\"" ])
      @ List.map (fun s -> Printf.sprintf "\"name\": \"%s\"" s.name) t.sections)
  in
  if (not !balanced) || !depth <> 0 || !in_string then Error "unbalanced structure"
  else if missing <> [] then Error ("missing " ^ String.concat ", " missing)
  else if List.exists (fun s -> s.ops_per_sec <= 0.) t.sections then
    Error "non-positive throughput"
  else if t.sections = [] then Error "no sections"
  else Ok ()

let write ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (render t));
  validate_file ~path t
