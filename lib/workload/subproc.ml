(* Black-box subprocess driving for the macro-workload harness.

   Everything here treats bin/hpjava as an opaque executable: spawn it
   with argv, optionally feed it a stdin script, capture stdout/stderr
   and the wait status, and time the whole thing end to end (process
   start to exit — the latency a scripting user actually experiences).
   No store, compiler or shell logic is linked in; the harness can only
   observe what a real user could. *)

type result = {
  argv : string list;
  status : Unix.process_status;
  stdout : string;
  stderr : string;
  elapsed_s : float;
}

let exit_code r = match r.status with Unix.WEXITED n -> Some n | _ -> None
let ok r = r.status = Unix.WEXITED 0
let signalled r = match r.status with Unix.WSIGNALED s -> Some s | _ -> None

let pp_status ppf = function
  | Unix.WEXITED n -> Format.fprintf ppf "exited %d" n
  | Unix.WSIGNALED s -> Format.fprintf ppf "killed by signal %d" s
  | Unix.WSTOPPED s -> Format.fprintf ppf "stopped by signal %d" s

let describe r =
  Format.asprintf "`%s` %a\n-- stdout --\n%s-- stderr --\n%s"
    (String.concat " " r.argv) pp_status r.status r.stdout r.stderr

(* -- locating the binary --------------------------------------------------- *)

(* Tests and bench rules run from their own dune workdirs; direct `dune
   exec` runs from the project root.  HPJAVA_BIN always wins. *)
let locate () =
  let absolute p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p in
  match Sys.getenv_opt "HPJAVA_BIN" with
  | Some p when Sys.file_exists p -> absolute p
  | Some p -> failwith ("HPJAVA_BIN points at " ^ p ^ ", which does not exist")
  | None -> begin
    let candidates =
      [
        "../../bin/hpjava.exe";
        "../bin/hpjava.exe";
        "bin/hpjava.exe";
        "_build/default/bin/hpjava.exe";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> absolute p
    | None ->
      failwith
        "hpjava binary not found: set HPJAVA_BIN or run from a dune rule that depends on \
         bin/hpjava.exe"
  end

(* -- running ---------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let environment_with extra =
  let shadowed kv =
    List.exists
      (fun (k, _) ->
        let pfx = k ^ "=" in
        String.length kv >= String.length pfx && String.sub kv 0 (String.length pfx) = pfx)
      extra
  in
  let base = Array.to_list (Unix.environment ()) |> List.filter (fun kv -> not (shadowed kv)) in
  Array.of_list (base @ List.map (fun (k, v) -> k ^ "=" ^ v) extra)

(* Run [bin args], feeding [stdin_text] (default: empty input) and
   capturing both output streams via temp files — no pipe-buffer
   deadlocks, whatever the child prints.  A child that outlives
   [timeout_s] is SIGKILLed and reported with its signal status, so a
   hung store can never hang the harness. *)
let run ?(env = []) ?stdin_text ?(timeout_s = 120.) ~bin args =
  let tmp suffix = Filename.temp_file "hpjava_sub" suffix in
  let out_f = tmp ".out" and err_f = tmp ".err" and in_f = tmp ".in" in
  write_file in_f (Option.value stdin_text ~default:"");
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ out_f; err_f; in_f ])
  @@ fun () ->
  let fd_in = Unix.openfile in_f [ Unix.O_RDONLY ] 0 in
  let fd_out = Unix.openfile out_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err_f [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let t0 = Unix.gettimeofday () in
  let pid =
    Unix.create_process_env bin
      (Array.of_list (bin :: args))
      (environment_with env) fd_in fd_out fd_err
  in
  List.iter Unix.close [ fd_in; fd_out; fd_err ];
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () -. t0 > timeout_s then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        snd (Unix.waitpid [] pid)
      end
      else begin
        Unix.sleepf 0.001;
        wait ()
      end
    | _, status -> status
  in
  let status = wait () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  { argv = bin :: args; status; stdout = read_file out_f; stderr = read_file err_f; elapsed_s }

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || go (i + 1)
  in
  go 0

(* -- background processes ---------------------------------------------------

   Long-lived children (`hpjava serve`) and coordinated concurrent
   clients (`hpjava connect` with a piped stdin the test feeds
   step-by-step).  Output still goes through temp files, so a noisy
   child cannot deadlock the harness, and the files double as live
   transcripts: [wait_output] polls them to sequence multi-client
   interleavings deterministically. *)

type proc = {
  pid : int;
  p_argv : string list;
  stdin_fd : Unix.file_descr option;  (* Some = piped stdin, still open *)
  out_file : string;
  err_file : string;
  started : float;
  mutable reaped : Unix.process_status option;
}

let spawn ?(env = []) ?(pipe_stdin = false) ~bin args =
  let tmp suffix = Filename.temp_file "hpjava_bg" suffix in
  let out_file = tmp ".out" and err_file = tmp ".err" in
  let fd_out = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let stdin_r, stdin_w =
    if pipe_stdin then begin
      let r, w = Unix.pipe () in
      Unix.set_close_on_exec w;
      (r, Some w)
    end
    else (Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0, None)
  in
  let pid =
    Unix.create_process_env bin
      (Array.of_list (bin :: args))
      (environment_with env) stdin_r fd_out fd_err
  in
  List.iter Unix.close [ stdin_r; fd_out; fd_err ];
  {
    pid;
    p_argv = bin :: args;
    stdin_fd = stdin_w;
    out_file;
    err_file;
    started = Unix.gettimeofday ();
    reaped = None;
  }

let send proc text =
  match proc.stdin_fd with
  | None -> invalid_arg "Subproc.send: process was not spawned with ~pipe_stdin:true"
  | Some fd ->
    let b = Bytes.of_string text in
    let rec go off =
      if off < Bytes.length b then
        match Unix.write fd b off (Bytes.length b - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
    in
    go 0

let close_stdin proc =
  match proc.stdin_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let alive proc =
  proc.reaped = None
  &&
  match Unix.waitpid [ Unix.WNOHANG ] proc.pid with
  | 0, _ -> true
  | _, status ->
    proc.reaped <- Some status;
    false

let proc_output proc = read_file proc.out_file
let proc_errors proc = read_file proc.err_file

(* Poll the live transcript for a marker — the deterministic way to
   sequence a multi-client interleaving (client A's commit must be
   answered before client B's is sent). *)
let wait_output ?(timeout_s = 30.) proc needle =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if contains (proc_output proc) needle then true
    else if Unix.gettimeofday () > deadline then false
    else if (not (alive proc)) && not (contains (proc_output proc) needle) then false
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

(* Wait for exit (SIGKILL after [timeout_s]) and hand back the same
   result record [run] produces.  Reaps at most once; safe after
   [alive] already reaped. *)
let collect ?(timeout_s = 120.) proc =
  close_stdin proc;
  let status =
    match proc.reaped with
    | Some status -> status
    | None ->
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] proc.pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill proc.pid Sys.sigkill with Unix.Unix_error _ -> ());
            snd (Unix.waitpid [] proc.pid)
          end
          else begin
            Unix.sleepf 0.002;
            wait ()
          end
        | _, status -> status
      in
      let status = wait () in
      proc.reaped <- Some status;
      status
  in
  let result =
    {
      argv = proc.p_argv;
      status;
      stdout = proc_output proc;
      stderr = proc_errors proc;
      elapsed_s = Unix.gettimeofday () -. proc.started;
    }
  in
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ proc.out_file; proc.err_file ];
  result

let terminate ?(signal = Sys.sigterm) ?timeout_s proc =
  if proc.reaped = None then ( try Unix.kill proc.pid signal with Unix.Unix_error _ -> ());
  collect ?timeout_s proc

(* -- tiny string utilities shared by the harness --------------------------- *)

let rec rm_rf path =
  let kind = try Some (Unix.lstat path).Unix.st_kind with Unix.Unix_error _ -> None in
  match kind with
  | Some Unix.S_DIR ->
    Array.iter
      (fun f -> rm_rf (Filename.concat path f))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | Some _ -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ()

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let with_temp_dir ?(prefix = "macro") f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
