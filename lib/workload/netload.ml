(* Many-client network load against a live `hpjava serve`.

   Drives K in-process wire-protocol clients (Server.Client) over one
   Unix socket, so the measured RTTs are pure request/answer cost —
   connect+hello, browse, edit, commit, get-link — with none of the
   process-start overhead the subprocess scenarios deliberately include.
   Every round contends all K clients on the same root, so with K >= 2
   each round is guaranteed to produce first-committer-wins conflicts:
   the conflict count is an assertion, not a curiosity. *)

module Client = Server.Client
module Protocol = Server.Protocol

type result = {
  clients : int;
  rounds : int;
  connections : int;
  connect_total_s : float;  (* wall time spent in connect+hello *)
  samples : (string * float list) list;  (* op class -> RTT ns, first-use order *)
  commits : int;
  conflicts : int;
  errors : int;
  elapsed_s : float;
}

let connections_per_sec r =
  float_of_int r.connections /. Float.max r.connect_total_s 1e-9

(* A tiny hyper-source with one primitive link, unique per (client,
   round) so every edit registers a fresh program. *)
let source ~client ~round =
  Printf.sprintf
    "//! class: Net%d_%d\n//! link 0: int %d\npublic class Net%d_%d {\n  // value #<0>\n}\n"
    client round
    ((client * 1000) + round)
    client round

(* The uid out of the edit answer ("... -> hyper-program N (@M); ..."). *)
let uid_of_edit_answer text =
  let pat = "hyper-program " in
  let n = String.length pat in
  let rec find i =
    if i + n > String.length text then None
    else if String.sub text i n = pat then begin
      let stop = ref (i + n) in
      while !stop < String.length text && text.[!stop] >= '0' && text.[!stop] <= '9' do
        incr stop
      done;
      int_of_string_opt (String.sub text (i + n) (!stop - (i + n)))
    end
    else find (i + 1)
  in
  find 0

let run ~socket ~clients ~rounds () =
  let t_start = Unix.gettimeofday () in
  let order = ref [] in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let record op ns =
    match Hashtbl.find_opt samples op with
    | Some b -> b := ns :: !b
    | None ->
      Hashtbl.add samples op (ref [ ns ]);
      order := op :: !order
  in
  let timed op f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    record op ((Unix.gettimeofday () -. t0) *. 1e9);
    r
  in
  let commits = ref 0 and conflicts = ref 0 and errors = ref 0 in
  let count = function
    | Protocol.Refused _ -> incr errors
    | _ -> ()
  in
  let t_conn = Unix.gettimeofday () in
  let conns =
    List.init clients (fun _ ->
        timed "net-connect" (fun () -> Client.connect (Client.unix_addr socket)))
  in
  let connect_total_s = Unix.gettimeofday () -. t_conn in
  let link_target = ref None in
  for round = 0 to rounds - 1 do
    (* Everyone edits the same root under the snapshots pinned after the
       previous round; then the commits race in turn — the first wins,
       every later one gets the typed conflict (and a fresh session). *)
    List.iteri
      (fun i c ->
        let answer =
          timed "net-edit" (fun () ->
              Client.rpc c
                (Protocol.Edit { root = "shared"; source = source ~client:i ~round }))
        in
        count answer;
        match answer with
        | Protocol.Ok_text text ->
          if !link_target = None then link_target := uid_of_edit_answer text
        | _ -> ())
      conns;
    List.iter
      (fun c ->
        let answer = timed "net-commit" (fun () -> Client.rpc c Protocol.Commit) in
        count answer;
        match answer with
        | Protocol.Ok_text _ -> incr commits
        | Protocol.Conflict _ -> incr conflicts
        | _ -> ())
      conns;
    List.iter
      (fun c -> count (timed "net-roots" (fun () -> Client.rpc c (Protocol.Browse Protocol.Roots))))
      conns;
    match !link_target with
    | None -> ()
    | Some hp ->
      List.iter
        (fun c ->
          count (timed "net-get-link" (fun () -> Client.rpc c (Protocol.Get_link { hp; link = 0 }))))
        conns
  done;
  List.iter Client.close conns;
  {
    clients;
    rounds;
    connections = clients;
    connect_total_s;
    samples = List.rev_map (fun op -> (op, !(Hashtbl.find samples op))) !order;
    commits = !commits;
    conflicts = !conflicts;
    errors = !errors;
    elapsed_s = Unix.gettimeofday () -. t_start;
  }
