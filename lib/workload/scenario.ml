(* Deterministic macro-workload scenarios.

   A scenario is a mixed session: several simulated users interleaving
   the whole hpjava surface — init, compile, instantiate, run, browse,
   link-following hyper-programs, class evolution, publishing, GC,
   integrity checks and interactive shell sessions — against ONE store,
   through the real binary as a subprocess (see {!Subproc}).

   Generation consults nothing but the seed, so a scenario replays
   byte-identically: every class source, root name and shell script is a
   pure function of [seed, users, ops].  Any failing run is reproduced
   exactly by re-running with the printed [--seed N].

   The player executes a scenario in a sandbox directory, optionally
   SIGKILLing one seed-chosen mutating step mid-stabilise via the
   binary's HPJAVA_KILL_AT_BYTE crash injector, then measures recovery
   (reopen + full integrity check) and asserts the bounded-loss-window
   invariant: every root bound by a previously COMPLETED step must
   survive; only the killed step's effects may be missing. *)

let sp = Printf.sprintf

(* ---------------------------------------------------------------------- *)
(* Ops                                                                     *)
(* ---------------------------------------------------------------------- *)

type op =
  | Init  (* creates the store, journalled durability *)
  | Compile of { cls : string; file : string; source : string }
  | Run of { cls : string }
  | New of { cls : string; root : string; arg : string }
  | Browse of { root : string option }
  | Census
  | Roots
  | Source of { cls : string }
  | Gc
  | Check
  | Export_html
  | Run_hp of { cls : string; file : string; source : string }
      (* link-following: a .hp program whose links resolve through the
         registry at compile time, compiled and run with --go *)
  | Print_hp of { root : string }
  | Evolve of { cls : string; file : string; source : string }
  | Shell of { script : string; saves : string list }
  | Sessions of { script : string; saves : string list }
      (* concurrent snapshot sessions racing in one shell process: two
         sessions write an overlapping root, the first committer wins,
         the loser gets a typed conflict and retries under a fresh
         snapshot (see [sessions_shell_script]) *)

type step = { user : int; op : op }
type t = { seed : int; users : int; steps : step list }

let op_class = function
  | Init -> "init"
  | Compile _ -> "compile"
  | Run _ -> "run"
  | New _ -> "new"
  | Browse _ -> "browse"
  | Census -> "census"
  | Roots -> "roots"
  | Source _ -> "source"
  | Gc -> "gc"
  | Check -> "check"
  | Export_html -> "export-html"
  | Run_hp _ -> "run-hp"
  | Print_hp _ -> "print-hp"
  | Evolve _ -> "evolve"
  | Shell _ -> "shell"
  | Sessions _ -> "sessions"

(* Roots the op durably binds once its process exits successfully. *)
let binds_roots = function
  | New { root; _ } -> [ root ]
  | Run_hp { cls; _ } -> [ "hp:" ^ cls ]
  | Shell { saves; _ } | Sessions { saves; _ } -> saves
  | _ -> []

(* Ops that mutate the store (and therefore stabilise on exit): the
   crash injector only makes sense aimed at one of these. *)
let mutates = function
  | Init | Compile _ | Run _ | New _ | Run_hp _ | Evolve _ | Shell _ | Sessions _ | Gc -> true
  | Browse _ | Census | Roots | Source _ | Check | Export_html | Print_hp _ -> false

(* ---------------------------------------------------------------------- *)
(* Source generation (pure functions of user/serial numbers)               *)
(* ---------------------------------------------------------------------- *)

let person_cls u = sp "U%dPerson" u

let person_source u =
  let c = person_cls u in
  sp
    "public class %s {\n\
    \  private String name;\n\
    \  private %s spouse;\n\
    \  public %s(String n) { name = n; }\n\
    \  public %s getSpouse() { return spouse; }\n\
    \  public static void marry(%s a, %s b) { a.spouse = b; b.spouse = a; }\n\
    \  public String toString() { return \"%s(\" + name + \")\"; }\n\
     }\n"
    c c c c c c c

(* The evolved version adds a field and changes behaviour; instances are
   reconstructed in place, so hyper-links keep resolving. *)
let person_source_v2 u =
  let c = person_cls u in
  sp
    "public class %s {\n\
    \  private String name;\n\
    \  private %s spouse;\n\
    \  private String note;\n\
    \  public %s(String n) { name = n; }\n\
    \  public %s getSpouse() { return spouse; }\n\
    \  public static void marry(%s a, %s b) { a.spouse = b; b.spouse = a; }\n\
    \  public String toString() { return \"%s(\" + name + \"+v2)\"; }\n\
     }\n"
    c c c c c c c

let app_source u k =
  sp
    "public class U%dApp%d {\n\
    \  public static int f(int x) { return x * %d + %d; }\n\
    \  public static void main(String[] args) {\n\
    \    System.println(String.valueOf(U%dApp%d.f(%d)));\n\
    \  }\n\
     }\n"
    u k (k + 2) (u + 1) u k (k + 3)

(* A Figure-5-style hyper-program: a method link and two object links,
   authored in the .hp interchange format so the links resolve through
   the registry of the real binary. *)
let marry_hp_source u k ra rb =
  let c = person_cls u in
  sp
    "//! class: U%dMarry%d\n\
     //! link 0: method %s.marry (L%s;L%s;)V\n\
     //! link 1: root %s\n\
     //! link 2: root %s\n\
     public class U%dMarry%d {\n\
    \  public static void main(String[] args) {\n\
    \    #<0>(#<1>, #<2>);\n\
    \  }\n\
     }\n"
    u k c c c ra rb u k

(* An interactive editing session: open an editor, type program text,
   insert hyper-links from specs (the shell's `link` gesture), compile,
   save under a root, run — the paper's Figure 12 workflow, scripted. *)
let marry_shell_script u k ra rb =
  let c = person_cls u in
  String.concat "\n"
    [
      sp "edit U%dSh%d" u k;
      sp "type public class U%dSh%d {\\n  public static void main(String[] args) {\\n    " u k;
      sp "link method %s.marry" c;
      "type (";
      sp "link root %s" ra;
      "type , ";
      sp "link root %s" rb;
      "type );\\n  }\\n}\\n";
      "compile";
      sp "save u%dsh%d" u k;
      "go";
      "census";
      "quit";
      "";
    ]

(* A maintenance session: the PR 2-4 command surfaces. *)
let maintenance_shell_script budget =
  String.concat "\n"
    [
      sp "scrub %d" budget;
      "health";
      "stats";
      "trace on";
      "stabilise";
      "trace dump";
      "trace off";
      "cache";
      "gc";
      "quit";
      "";
    ]

(* A concurrent-sessions race, scripted: session 1 buffers writes to a
   private root and a contended one; session 2 opens against the same
   snapshot lineage, writes the contended root too and commits first;
   session 1's commit must then be refused with a typed conflict naming
   exactly the contended root, and the lost write is retried under a
   fresh snapshot.  Session ids are per-process, so `session use 1` is
   deterministic.  Durable outcome: all three roots bound (the contended
   one holding the FIRST committer's value). *)
let sessions_shell_script u k =
  let r suffix = sp "u%dmv%d%s" u k suffix in
  String.concat "\n"
    [
      "session open";
      sp "bind %s %d" (r "a") (100 + k);
      sp "bind %s %d" (r "c") (900 + k);
      "session open";
      sp "bind %s %d" (r "c") (200 + k);
      sp "bind %s %d" (r "b") (300 + k);
      "session status";
      "stats";
      "commit";
      "session use 1";
      "commit";
      "session open";
      sp "bind %s %d" (r "a") (400 + k);
      "commit";
      "roots";
      "quit";
      "";
    ]

let sessions_op u k =
  Sessions
    {
      script = sessions_shell_script u k;
      saves = [ sp "u%dmv%da" u k; sp "u%dmv%db" u k; sp "u%dmv%dc" u k ];
    }

(* ---------------------------------------------------------------------- *)
(* Generation                                                              *)
(* ---------------------------------------------------------------------- *)

type user_state = {
  mutable roots : string list;  (* person-instance roots, oldest first *)
  mutable next_root : int;
  mutable apps : int;  (* compiled app classes *)
  mutable marries : int;
  mutable shells : int;
  mutable msessions : int;  (* concurrent-session race scripts *)
  mutable evolved : bool;
}

let generate ~seed ~users ~ops =
  let rng = Random.State.make [| 0x6d61_63; seed |] in
  let states =
    Array.init users (fun _ ->
        {
          roots = [];
          next_root = 0;
          apps = 0;
          marries = 0;
          shells = 0;
          msessions = 0;
          evolved = false;
        })
  in
  let steps = ref [] in
  let emit user op = steps := { user; op } :: !steps in
  emit 0 Init;
  for u = 0 to users - 1 do
    emit u
      (Compile { cls = person_cls u; file = sp "U%dPerson.java" u; source = person_source u })
  done;
  let new_person u =
    let st = states.(u) in
    let k = st.next_root in
    st.next_root <- k + 1;
    let root = sp "u%dp%d" u k in
    st.roots <- st.roots @ [ root ];
    New { cls = person_cls u; root; arg = sp "p%d-%d" u k }
  in
  let pick_root rng st = List.nth st.roots (Random.State.int rng (List.length st.roots)) in
  let pick_pair rng st =
    let n = List.length st.roots in
    let i = Random.State.int rng n in
    let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
    (List.nth st.roots i, List.nth st.roots j)
  in
  for _ = 1 to ops do
    let u = Random.State.int rng users in
    let st = states.(u) in
    let op =
      if List.length st.roots < 2 then new_person u
      else begin
        match Random.State.int rng 19 with
        | 0 | 1 -> new_person u
        | 2 | 3 ->
          let k = st.apps in
          st.apps <- k + 1;
          Compile { cls = sp "U%dApp%d" u k; file = sp "U%dApp%d.java" u k; source = app_source u k }
        | 4 | 5 when st.apps > 0 -> Run { cls = sp "U%dApp%d" u (Random.State.int rng st.apps) }
        | 6 | 7 ->
          let k = st.marries in
          st.marries <- k + 1;
          let ra, rb = pick_pair rng st in
          Run_hp
            {
              cls = sp "U%dMarry%d" u k;
              file = sp "U%dMarry%d.hp" u k;
              source = marry_hp_source u k ra rb;
            }
        | 8 when st.marries > 0 ->
          Print_hp { root = sp "hp:U%dMarry%d" u (Random.State.int rng st.marries) }
        | 9 ->
          let k = st.shells in
          st.shells <- k + 1;
          let ra, rb = pick_pair rng st in
          Shell { script = marry_shell_script u k ra rb; saves = [ sp "u%dsh%d" u k ] }
        | 10 ->
          Shell { script = maintenance_shell_script (64 + Random.State.int rng 192); saves = [] }
        | 11 ->
          Browse { root = (if Random.State.bool rng then Some (pick_root rng st) else None) }
        | 12 -> Census
        | 13 -> Roots
        | 14 when not st.evolved ->
          st.evolved <- true;
          Evolve
            { cls = person_cls u; file = sp "U%dPerson_v2.java" u; source = person_source_v2 u }
        | 14 -> Source { cls = person_cls u }
        | 15 -> Gc
        | 16 -> if Random.State.bool rng then Check else Export_html
        | 17 ->
          let k = st.msessions in
          st.msessions <- k + 1;
          sessions_op u k
        | _ ->
          let k = st.marries in
          st.marries <- k + 1;
          let ra, rb = pick_pair rng st in
          Run_hp
            {
              cls = sp "U%dMarry%d" u k;
              file = sp "U%dMarry%d.hp" u k;
              source = marry_hp_source u k ra rb;
            }
      end
    in
    emit u op
  done;
  (* every scenario carries at least one concurrent-sessions race — even
     the smoke slice measures session-commit latency and records a
     first-committer-wins conflict *)
  let st0 = states.(0) in
  let k = st0.msessions in
  st0.msessions <- k + 1;
  emit 0 (sessions_op 0 k);
  (* every scenario ends with the read-back trio, so a play always
     finishes on a whole-store verification *)
  emit 0 Census;
  emit 0 Roots;
  emit 0 Check;
  { seed; users; steps = List.rev !steps }

(* Step indexes the crash injector may target: mutating ops, past the
   initial bootstrap so there is a durable state to recover to. *)
let crash_candidates t =
  List.mapi (fun i s -> (i, s)) t.steps
  |> List.filter (fun (i, s) ->
         i > t.users
         &&
         match s.op with
         | Compile _ | New _ | Run_hp _ | Evolve _ -> true
         | _ -> false)
  |> List.map fst

(* ---------------------------------------------------------------------- *)
(* Playing                                                                 *)
(* ---------------------------------------------------------------------- *)

type exec = {
  index : int;
  step : step;
  result : Subproc.result;
  ok : bool;
}

type crash_report = {
  step_index : int;
  crashed_class : string;  (* op class of the killed step *)
  kill_byte : int;
  killed : bool;  (* false: the kill byte lay beyond the step's writes *)
  recovery_s : float;  (* reopen + full integrity check, end to end *)
  repair_s : float;
      (* the post-recovery shell session that runs `repair all`, end to
         end; on a fully healthy store that is the cost of finding
         nothing to do *)
  degraded_ops : int;  (* reads/writes hitting demoted shards, per `health` *)
  quarantined_after : int;
  check_ok : bool;
  lost_roots : string list;  (* durable roots missing after recovery *)
}

type play = {
  scenario : t;
  execs : exec list;  (* chronological *)
  crash : crash_report option;
  elapsed_s : float;  (* whole play, wall clock *)
  commit_us : float list;
      (* every session commit's in-process latency, as printed by the
         shell ("committed session N: M ops in T us"), chronological *)
  commit_conflicts : int;  (* commits refused first-committer-wins *)
}

let failures play = List.filter (fun e -> not e.ok) play.execs

(* Parse "... N quarantined ..." out of `hpjava check` output. *)
let quarantined_of_check out =
  let marker = " quarantined" in
  let pos = ref None in
  let n = String.length out and m = String.length marker in
  for i = 0 to n - m do
    if !pos = None && String.sub out i m = marker then pos := Some i
  done;
  match !pos with
  | None -> -1
  | Some stop ->
    let start = ref stop in
    while !start > 0 && match out.[!start - 1] with '0' .. '9' -> true | _ -> false do
      decr start
    done;
    if !start = stop then -1 else int_of_string (String.sub out !start (stop - !start))

(* Parse the integer following [prefix] on any line of [out] (e.g. the
   shell's "degraded ops: N" health line); [default] when absent. *)
let int_after ~default prefix out =
  String.split_on_char '\n' out
  |> List.find_map (fun line ->
         let n = String.length prefix in
         if String.length line >= n && String.sub line 0 n = prefix then
           int_of_string_opt (String.trim (String.sub line n (String.length line - n)))
         else None)
  |> Option.value ~default

(* Session-commit telemetry out of a shell transcript: the in-process
   latency of every "committed session N: M ops in T us" line (the
   shell times [Store.Session.commit] itself, so this is the MVCC
   validate-and-apply cost, not process startup), plus the number of
   "commit conflict:" refusals.  Chronological within the transcript. *)
let session_commits_of out =
  String.split_on_char '\n' out
  |> List.fold_left
       (fun (us, conflicts) line ->
         if String.starts_with ~prefix:"commit conflict: session " line then
           (us, conflicts + 1)
         else if String.starts_with ~prefix:"committed session " line then begin
           match String.rindex_opt line ' ' with
           | Some sp_pos when String.ends_with ~suffix:" us" line -> begin
             let tail = String.sub line 0 sp_pos in
             match String.rindex_opt tail ' ' with
             | Some p -> begin
               match float_of_string_opt (String.sub tail (p + 1) (sp_pos - p - 1)) with
               | Some v -> (v :: us, conflicts)
               | None -> (us, conflicts)
             end
             | None -> (us, conflicts)
           end
           | _ -> (us, conflicts)
         end
         else (us, conflicts))
       ([], 0)
  |> fun (us, conflicts) -> (List.rev us, conflicts)

(* First token of every line: the root names in `hpjava roots` output. *)
let root_names_of out =
  String.split_on_char '\n' out
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | name :: _ when name <> "" -> Some name
         | _ -> None)

(* [shards > 1] initialises the store sharded, so the whole scenario —
   crash injection and recovery included — runs against the partitioned
   layout.  Every other step is shard-agnostic: the store remembers its
   own shard count. *)
let play ?crash_at ?(kill_byte = 256) ?(shards = 1) ~bin ~dir scenario =
  let store = Filename.concat dir "store.hpj" in
  let src = Filename.concat dir "src" in
  let html = Filename.concat dir "html" in
  (try Unix.mkdir src 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write_src file source =
    let path = Filename.concat src file in
    Subproc.write_file path source;
    path
  in
  let argv_of = function
    | Init ->
      let sharding = if shards > 1 then [ "--shards"; string_of_int shards ] else [] in
      (([ "init"; "--journalled" ] @ sharding @ [ store ]), None)
    | Compile { file; source; _ } -> ([ "compile"; store; write_src file source ], None)
    | Run { cls } -> ([ "run"; store; cls ], None)
    | New { cls; root; arg } -> ([ "new"; store; cls; root; arg ], None)
    | Browse { root = None } -> ([ "browse"; store ], None)
    | Browse { root = Some r } -> ([ "browse"; store; "--root"; r ], None)
    | Census -> ([ "census"; store ], None)
    | Roots -> ([ "roots"; store ], None)
    | Source { cls } -> ([ "source"; store; cls ], None)
    | Gc -> ([ "gc"; store ], None)
    | Check -> ([ "check"; store ], None)
    | Export_html -> ([ "export-html"; store; html ], None)
    | Run_hp { file; source; _ } -> ([ "run-hp"; store; "--go"; write_src file source ], None)
    | Print_hp { root } -> ([ "print-hp"; store; root ], None)
    | Evolve { cls; file; source } -> ([ "evolve"; store; cls; write_src file source ], None)
    | Shell { script; _ } | Sessions { script; _ } -> ([ "shell"; store ], Some script)
  in
  let t0 = Unix.gettimeofday () in
  let execs = ref [] in
  let crash = ref None in
  let durable_roots = ref [] in
  List.iteri
    (fun index step ->
      let args, stdin_text = argv_of step.op in
      let crashing = crash_at = Some index in
      let env = if crashing then [ ("HPJAVA_KILL_AT_BYTE", string_of_int kill_byte) ] else [] in
      let result = Subproc.run ~env ?stdin_text ~bin args in
      let killed = Subproc.signalled result = Some Sys.sigkill in
      let ok = if crashing then Subproc.ok result || killed else Subproc.ok result in
      execs := { index; step; result; ok } :: !execs;
      if Subproc.ok result then durable_roots := !durable_roots @ binds_roots step.op;
      if crashing then begin
        (* recovery: the next process to open the store replays the
           journal and must find a fully sound state *)
        let check = Subproc.run ~bin [ "check"; store ] in
        (* an operator session: inspect health, repair anything the crash
           demoted, and report degraded-mode traffic — on a clean
           recovery this measures the no-op repair path *)
        let repair =
          Subproc.run ~stdin_text:"health\nrepair all\nquit\n" ~bin [ "shell"; store ]
        in
        let roots = Subproc.run ~bin [ "roots"; store ] in
        let present = root_names_of roots.Subproc.stdout in
        let lost = List.filter (fun r -> not (List.mem r present)) !durable_roots in
        crash :=
          Some
            {
              step_index = index;
              crashed_class = op_class step.op;
              kill_byte;
              killed;
              recovery_s = check.Subproc.elapsed_s;
              repair_s = repair.Subproc.elapsed_s;
              degraded_ops = int_after ~default:0 "degraded ops: " repair.Subproc.stdout;
              quarantined_after = quarantined_of_check check.Subproc.stdout;
              check_ok = Subproc.ok check && Subproc.contains check.Subproc.stdout "integrity ok";
              lost_roots = lost;
            };
        (* the user whose session died retries the command — it must
           succeed against the recovered store, and it restores the
           state later steps depend on *)
        if killed then begin
          let retry = Subproc.run ?stdin_text ~bin args in
          execs := { index; step; result = retry; ok = Subproc.ok retry } :: !execs;
          if Subproc.ok retry then durable_roots := !durable_roots @ binds_roots step.op
        end
      end)
    scenario.steps;
  let execs = List.rev !execs in
  let commit_us, commit_conflicts =
    List.fold_left
      (fun (us, n) e ->
        let u, c = session_commits_of e.result.Subproc.stdout in
        (us @ u, n + c))
      ([], 0) execs
  in
  {
    scenario;
    execs;
    crash = !crash;
    elapsed_s = Unix.gettimeofday () -. t0;
    commit_us;
    commit_conflicts;
  }

(* The one-line replay recipe printed whenever a randomized run fails. *)
let replay_line t =
  (* steps = Init + per-user compiles + ops + the fixed sessions race +
     the final census/roots/check trio *)
  sp "replay exactly with: dune exec bench/macro_main.exe -- --seed %d --users %d --ops %d" t.seed
    t.users (List.length t.steps - 1 - t.users - 4)
