(* Connection authentication: the wire protocol's Hello gate.

   The server fronts the hyper-program registry, so it authenticates the
   way the registry does — the password "built into the system" (paper
   Section 4.2), checked with Registry.check_password.  Version skew is
   refused before the password is even looked at, so an old client gets
   a "proto" answer it can render, not an auth failure it would
   misreport. *)

open Hyperprog

type refusal = {
  code : string;
  message : string;
}

let refusals = Atomic.make 0
let refusal_count () = Atomic.get refusals

let validate vm ~version ~password =
  if version <> Protocol.version then begin
    Atomic.incr refusals;
    Error
      {
        code = Protocol.code_proto;
        message =
          Printf.sprintf "protocol version %d not supported (server speaks version %d)"
            version Protocol.version;
      }
  end
  else if not (Registry.check_password vm password) then begin
    Atomic.incr refusals;
    Error { code = Protocol.code_auth; message = "registry password refused" }
  end
  else Ok ()
