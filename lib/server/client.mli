(** Blocking wire-protocol client (what [hpjava connect], the netload
    workload and the test probes speak). *)

type t

exception Server_refused of {
  code : string;
  message : string;
}
(** The server answered Hello with a typed refusal (bad password,
    protocol-version skew).  An {e unreachable} server raises
    [Unix.Unix_error] instead — callers map the two onto different exit
    codes. *)

val unix_addr : string -> Unix.sockaddr
val tcp_addr : string -> int -> Unix.sockaddr

val connect : ?password:string -> Unix.sockaddr -> t
(** Dial and perform the Hello handshake (password defaults to the
    registry's built-in one). *)

val rpc : t -> Protocol.request -> Protocol.response
(** One request, one answer.
    @raise Frame.Closed if the server hung up.
    @raise Stdlib.Failure on a framing/decoding violation. *)

val close : t -> unit
(** Send Bye (best-effort) and close the socket. *)

val session : t -> int
(** The session id granted at Hello. *)

val server : t -> string
