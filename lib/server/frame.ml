(* Wire framing for the hyper-programming server.

   Every message in either direction travels as one frame:

     offset 0   4 bytes   magic "hpw1"
     offset 4   4 bytes   u32 big-endian body length N (0 <= N <= max_body)
     offset 8   4 bytes   u32 big-endian CRC32 of the body
     offset 12  N bytes   body (opcode byte + operands, see Protocol)

   The magic makes protocol sniffing deterministic: a connection whose
   first bytes are not "hpw1" is either an HTTP request for the live
   dashboard ("GET "/"HEAD") or garbage, and the server can tell which
   from the very first read.  The CRC is the same polynomial the store's
   on-disk records use (Pstore.Codec.crc32), so a corrupted frame is
   rejected before any field is decoded. *)

let magic = "hpw1"
let header_len = 12

(* Generous for hyper-source bodies, small enough that a hostile length
   field cannot make the server allocate unboundedly. *)
let max_body = 1 lsl 20

type error =
  | Bad_magic
  | Too_large of int
  | Bad_crc

let describe_error = function
  | Bad_magic -> "bad frame magic"
  | Too_large n -> Printf.sprintf "frame body of %d bytes exceeds the %d-byte limit" n max_body
  | Bad_crc -> "frame checksum mismatch"

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let crc body = Int32.to_int (Pstore.Codec.crc32 body) land 0xffffffff

let encode body =
  let buf = Buffer.create (header_len + String.length body) in
  Buffer.add_string buf magic;
  put_u32 buf (String.length body);
  put_u32 buf (crc body);
  Buffer.add_string buf body;
  Buffer.contents buf

(* -- incremental extraction (the server's read path) ----------------------- *)

(* Examine the accumulated input prefix.  [Got (body, consumed)] hands
   back one complete verified frame; [Need n] asks for at least [n] more
   bytes; [Bad e] means the stream is unrecoverable (framing gives no
   resynchronisation point, so the connection must die after one typed
   error answer). *)
type extract =
  | Got of string * int
  | Need of int
  | Bad of error

let extract data =
  let have = String.length data in
  if have < 4 then
    if data = String.sub magic 0 have then Need (header_len - have) else Bad Bad_magic
  else if String.sub data 0 4 <> magic then Bad Bad_magic
  else if have < header_len then Need (header_len - have)
  else begin
    let len = get_u32 data 4 in
    if len > max_body then Bad (Too_large len)
    else if have < header_len + len then Need (header_len + len - have)
    else begin
      let body = String.sub data header_len len in
      if get_u32 data 8 <> crc body then Bad Bad_crc else Got (body, header_len + len)
    end
  end

(* -- blocking I/O (the client's path, and test probes) --------------------- *)

exception Closed

let really_write fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let rec go off =
    if off < len then begin
      match Unix.write fd bytes off (len - off) with
      | 0 -> raise Closed
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
    end
  in
  go 0

let really_read fd n =
  let bytes = Bytes.create n in
  let rec go off =
    if off < n then begin
      match Unix.read fd bytes off (n - off) with
      | 0 -> raise Closed
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed
    end
  in
  go 0;
  Bytes.to_string bytes

let write_frame fd body = really_write fd (encode body)

(* Read one whole frame off a blocking socket.
   @raise Closed on EOF mid-frame.
   @raise Stdlib.Failure via [failwith] on a framing violation — the
   peer is broken, there is nothing to resynchronise to. *)
let read_frame fd =
  let header = really_read fd header_len in
  if String.sub header 0 4 <> magic then failwith (describe_error Bad_magic);
  let len = get_u32 header 4 in
  if len > max_body then failwith (describe_error (Too_large len));
  let body = really_read fd len in
  if get_u32 header 8 <> crc body then failwith (describe_error Bad_crc);
  body
