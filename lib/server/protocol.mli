(** The hyper-programming wire protocol: request/response bodies carried
    inside {!Frame} frames.

    Decoding is total — any violation comes back as [Error], never an
    exception — because the fuzz suite feeds it arbitrary bytes.  The
    protocol is versioned through [Hello]. *)

val version : int

type browse =
  | Roots
  | Census
  | Root of string
  | Programs

type request =
  | Hello of { version : int; password : string }
      (** must be the first request on a connection; authenticates
          against the hyper-program registry password *)
  | Browse of browse
  | Get_link of { hp : int; link : int }
  | Edit of { root : string; source : string }
      (** parse [source] as hyper-source, register the program, and bind
          [root] to it through this connection's session (buffered until
          [Commit]) *)
  | Compile of { source : string }
  | Commit
  | Abort
  | Stats
  | Health
  | Bye

type response =
  | Hello_ok of { session : int; server : string }
  | Ok_text of string
  | Conflict of { session : int; oids : int list; keys : string list }
      (** the typed first-committer-wins refusal: [Failure.Commit_conflict]
          end to end.  The server has already reopened a fresh-snapshot
          session for the connection, so the client retries immediately. *)
  | Refused of { code : string; message : string }

(** {1 Error codes} *)

val code_proto : string
val code_auth : string
val code_bad_source : string
val code_compile : string
val code_broken_link : string
val code_not_found : string
val code_degraded : string
val code_refused : string
val code_vm : string
val code_internal : string

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val describe_response : response -> string
(** One-line human rendering (what [hpjava connect] prints). *)
