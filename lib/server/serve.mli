(** The hyper-programming server: a long-lived multi-client front-end
    over one open store.

    A single-threaded select loop — per-client isolation comes from MVCC
    sessions, not threads.  Connections are sniffed on their first
    bytes: the wire protocol announces itself with the frame magic,
    HTTP-looking openings are routed to the read-only live dashboard
    ([/], [/hp/<uid>], [/hp/<uid>/link/<i>]), and anything else is
    answered with one typed proto-error frame and closed. *)

open Pstore
open Minijava

val run : ?tcp_port:int -> socket:string -> store:Store.t -> vm:Rt.t -> unit -> unit
(** Serve until SIGTERM/SIGINT, listening on the Unix-domain [socket]
    (and loopback [tcp_port] if given).  On shutdown: every connection's
    session is aborted, the store is stabilised, and the socket path is
    removed. *)
