(** Connection authentication: the wire protocol's Hello gate.

    A connection earns a session by presenting the hyper-program
    registry's password (paper Section 4.2) in its first request.
    Protocol-version skew is refused as a "proto" error before the
    password is examined. *)

open Minijava

type refusal = {
  code : string;
  message : string;
}

val validate : Rt.t -> version:int -> password:string -> (unit, refusal) result

val refusal_count : unit -> int
(** Hello refusals since process start (surfaced by the stats request). *)
