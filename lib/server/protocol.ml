(* The hyper-programming wire protocol: request and response bodies.

   A body is [opcode byte][operands]; operands are u32 big-endian
   integers and u32-length-prefixed strings, in a fixed order per
   opcode.  Decoding is total: any violation (unknown opcode, truncated
   operand, trailing garbage, oversized count) comes back as [Error
   Malformed], never an exception — the fuzz suite feeds this decoder
   arbitrary bytes.

   Protocol version 1.  The client states its version in [Hello]; the
   server refuses anything else with a "proto" error, so both sides can
   evolve without silent misparses. *)

let version = 1

(* Cap on decoded list lengths: a conflict can only name as many oids
   and keys as a session buffered, and no session buffers millions. *)
let max_list = 65536

type browse =
  | Roots
  | Census
  | Root of string
  | Programs

type request =
  | Hello of { version : int; password : string }
  | Browse of browse
  | Get_link of { hp : int; link : int }
  | Edit of { root : string; source : string }
  | Compile of { source : string }
  | Commit
  | Abort
  | Stats
  | Health
  | Bye

type response =
  | Hello_ok of { session : int; server : string }
  | Ok_text of string
  | Conflict of { session : int; oids : int list; keys : string list }
  | Refused of { code : string; message : string }

(* Error codes: the typed vocabulary clients may dispatch on. *)
let code_proto = "proto" (* framing/decoding/sequencing violation *)
let code_auth = "auth" (* hello refused: wrong registry password *)
let code_bad_source = "bad-source" (* hyper-source parse failure *)
let code_compile = "compile" (* MiniJava compile error *)
let code_broken_link = "broken-link" (* getLink degraded: typed Failure *)
let code_not_found = "not-found"
let code_degraded = "degraded" (* write refused by a demoted shard *)
let code_refused = "refused" (* store refused the operation (Invalid_argument) *)
let code_vm = "vm" (* a Java-level error escaped the operation *)
let code_internal = "internal"

(* -- encoding --------------------------------------------------------------- *)

let put_u32 = Frame.put_u32

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf put xs =
  put_u32 buf (List.length xs);
  List.iter (put buf) xs

let with_op op fill =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr op);
  fill buf;
  Buffer.contents buf

let encode_request = function
  | Hello { version; password } ->
    with_op 1 (fun b ->
        put_u32 b version;
        put_str b password)
  | Browse Roots -> with_op 2 (fun b -> Buffer.add_char b '\000')
  | Browse Census -> with_op 2 (fun b -> Buffer.add_char b '\001')
  | Browse (Root name) ->
    with_op 2 (fun b ->
        Buffer.add_char b '\002';
        put_str b name)
  | Browse Programs -> with_op 2 (fun b -> Buffer.add_char b '\003')
  | Get_link { hp; link } ->
    with_op 3 (fun b ->
        put_u32 b hp;
        put_u32 b link)
  | Edit { root; source } ->
    with_op 4 (fun b ->
        put_str b root;
        put_str b source)
  | Compile { source } -> with_op 5 (fun b -> put_str b source)
  | Commit -> with_op 6 ignore
  | Abort -> with_op 7 ignore
  | Stats -> with_op 8 ignore
  | Health -> with_op 9 ignore
  | Bye -> with_op 10 ignore

let encode_response = function
  | Hello_ok { session; server } ->
    with_op 0x80 (fun b ->
        put_u32 b session;
        put_str b server)
  | Ok_text text -> with_op 0x81 (fun b -> put_str b text)
  | Conflict { session; oids; keys } ->
    with_op 0x82 (fun b ->
        put_u32 b session;
        put_list b put_u32 oids;
        put_list b put_str keys)
  | Refused { code; message } ->
    with_op 0x83 (fun b ->
        put_str b code;
        put_str b message)

(* -- decoding --------------------------------------------------------------- *)

exception Malformed of string

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then raise (Malformed "truncated operand")

let u32 c =
  need c 4;
  let v = Frame.get_u32 c.data c.pos in
  c.pos <- c.pos + 4;
  v

let str c =
  let n = u32 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let list c item =
  let n = u32 c in
  if n > max_list then raise (Malformed "oversized list");
  List.init n (fun _ -> item c)

let finish c v =
  if c.pos <> String.length c.data then raise (Malformed "trailing garbage");
  v

(* NB: [finish] must raise inside the [try] — an [exception] case on the
   inner match would only cover the opcode handler itself, and trailing
   garbage would escape as an exception (caught by the fuzz suite). *)
let decode body opcodes =
  if body = "" then Error "empty body"
  else
    try
      let c = { data = body; pos = 1 } in
      match opcodes (Char.code body.[0]) c with
      | Some v -> Ok (finish c v)
      | None -> Error (Printf.sprintf "unknown opcode %d" (Char.code body.[0]))
    with Malformed m -> Error m

let decode_request body =
  decode body (fun op c ->
      match op with
      | 1 ->
        let version = u32 c in
        let password = str c in
        Some (Hello { version; password })
      | 2 -> begin
        need c 1;
        let tag = Char.code c.data.[c.pos] in
        c.pos <- c.pos + 1;
        match tag with
        | 0 -> Some (Browse Roots)
        | 1 -> Some (Browse Census)
        | 2 -> Some (Browse (Root (str c)))
        | 3 -> Some (Browse Programs)
        | n -> raise (Malformed (Printf.sprintf "unknown browse target %d" n))
      end
      | 3 ->
        let hp = u32 c in
        let link = u32 c in
        Some (Get_link { hp; link })
      | 4 ->
        let root = str c in
        let source = str c in
        Some (Edit { root; source })
      | 5 -> Some (Compile { source = str c })
      | 6 -> Some Commit
      | 7 -> Some Abort
      | 8 -> Some Stats
      | 9 -> Some Health
      | 10 -> Some Bye
      | _ -> None)

let decode_response body =
  decode body (fun op c ->
      match op with
      | 0x80 ->
        let session = u32 c in
        let server = str c in
        Some (Hello_ok { session; server })
      | 0x81 -> Some (Ok_text (str c))
      | 0x82 ->
        let session = u32 c in
        let oids = list c u32 in
        let keys = list c str in
        Some (Conflict { session; oids; keys })
      | 0x83 ->
        let code = str c in
        let message = str c in
        Some (Refused { code; message })
      | _ -> None)

(* -- rendering -------------------------------------------------------------- *)

let describe_response = function
  | Hello_ok { session; server } -> Printf.sprintf "connected: session %d on %s" session server
  | Ok_text text -> text
  | Conflict { session; oids; keys } ->
    Printf.sprintf "commit conflict: session %d lost (first committer wins); clashes: %s"
      session
      (String.concat ", " (List.map (fun o -> "@" ^ string_of_int o) oids @ keys))
  | Refused { code; message } -> Printf.sprintf "error (%s): %s" code message
