(** Per-connection request dispatch.

    Each authenticated connection owns one {!Pstore.Store.Session}
    (snapshot isolation); commit/abort/conflict consume it and a fresh
    one is opened immediately, so clients retry a lost commit race by
    re-sending their edit on the same connection.  Every failure is
    answered as one typed frame — no request may kill the server or
    leak a session. *)

open Pstore
open Minijava

type conn = {
  vm : Rt.t;
  store : Store.t;
  server_name : string;
  mutable password : string option;
  mutable session : Store.Session.t option;
  mutable closing : bool;  (** Bye received: close once the answer is written *)
}

val create : vm:Rt.t -> store:Store.t -> name:string -> conn

val handle : conn -> string -> string
(** One decoded-frame body in, one encoded response body out.  Total:
    malformed bodies and failed operations come back as typed error
    frames, never exceptions. *)

val framing_error : conn -> Frame.error -> string
(** The one typed answer sent before closing a connection whose stream
    violated framing. *)

val teardown : conn -> unit
(** Abort any open session — called whenever the connection dies, on
    every path. *)
