(* The hyper-programming server: a long-lived, multi-client front-end
   over one open store.

   Single-threaded select loop.  The store (and the VM above it) is not
   thread-safe, and it does not need to be: per-client isolation comes
   from MVCC sessions, not threads, so one loop dispatches every
   connection and no lock exists to get wrong.  The risk that remains —
   a stalled client blocking the loop inside a write — is bounded with a
   send timeout: a connection that cannot drain its answer in
   [write_timeout] seconds is dropped, not waited on.

   Each connection starts undecided and is sniffed on its first bytes:
   the wire protocol announces itself with the "hpw1" frame magic, and
   anything that starts like an HTTP request ("GET " / "HEAD") is routed
   to the read-only live dashboard.  Everything else is answered with
   one typed proto-error frame and closed — the fuzz suite's garbage
   openings land here. *)

open Pstore
open Hyperprog

let write_timeout = 5.0
let max_http_request = 16 * 1024

type kind =
  | Sniffing
  | Wire of Dispatch.conn
  | Http

type conn = {
  fd : Unix.file_descr;
  mutable kind : kind;
  mutable input : string;  (* accumulated unconsumed input *)
  mutable dead : bool;
}

(* -- the HTTP dashboard ------------------------------------------------------ *)

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let not_found path =
  http_response ~status:"404 Not Found"
    ~body:
      (Printf.sprintf
         "<!DOCTYPE html>\n<html><body><h1>404</h1><p>no page at %s</p></body></html>\n"
         (Html_export.escape path))

(* Routes: /  /index.html  /hp/<uid>  /hp/<uid>/link/<i> — all read-only. *)
let http_route vm path =
  let segments = String.split_on_char '/' path |> List.filter (fun s -> s <> "") in
  match segments with
  | [] | [ "index.html" ] -> http_response ~status:"200 OK" ~body:(Html_export.live_index vm)
  | [ "hp"; uid ] -> begin
    match int_of_string_opt uid with
    | None -> not_found path
    | Some uid -> begin
      match Html_export.live_page vm ~uid with
      | Some body -> http_response ~status:"200 OK" ~body
      | None -> not_found path
    end
  end
  | [ "hp"; uid; "link"; link ] -> begin
    match (int_of_string_opt uid, int_of_string_opt link) with
    | Some uid, Some link ->
      http_response ~status:"200 OK" ~body:(Html_export.live_link_page vm ~uid ~link)
    | _ -> not_found path
  end
  | _ -> not_found path

let http_answer vm request =
  match String.split_on_char ' ' (List.hd (String.split_on_char '\r' request)) with
  | ("GET" | "HEAD") :: path :: _ -> http_route vm path
  | _ ->
    http_response ~status:"400 Bad Request"
      ~body:"<!DOCTYPE html>\n<html><body><h1>400</h1></body></html>\n"

(* -- the loop ---------------------------------------------------------------- *)

let stop_requested = ref false

let install_signals () =
  (* A client hanging up mid-write must be an EPIPE we catch, never a
     process-killing signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let request_stop _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)

let close_conn conn =
  if not conn.dead then begin
    conn.dead <- true;
    (match conn.kind with Wire d -> Dispatch.teardown d | Sniffing | Http -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Write an answer on the blocking fd (send timeout armed at accept).
   Any write failure — timeout, reset, EPIPE — kills this connection
   only. *)
let send conn s =
  try Frame.really_write conn.fd s
  with Frame.Closed | Unix.Unix_error _ -> close_conn conn

let drop conn consumed =
  conn.input <- String.sub conn.input consumed (String.length conn.input - consumed)

let is_prefix ~prefix:s data =
  let n = min (String.length s) (String.length data) in
  String.sub data 0 n = String.sub s 0 n

(* Process whatever whole units the accumulated input holds. *)
let rec pump ~vm ~store ~name conn =
  if not conn.dead then
    match conn.kind with
    | Sniffing ->
      let d = conn.input in
      if String.length d >= 4 then begin
        if is_prefix ~prefix:"GET " d || is_prefix ~prefix:"HEAD" d then
          conn.kind <- Http
        else conn.kind <- Wire (Dispatch.create ~vm ~store ~name);
        pump ~vm ~store ~name conn
      end
      else if
        not
          (is_prefix ~prefix:Frame.magic d || is_prefix ~prefix:"GET " d
          || is_prefix ~prefix:"HEAD" d)
      then begin
        (* Too short to sniff but already impossible: treat as wire so
           the garbage gets its one typed proto answer. *)
        conn.kind <- Wire (Dispatch.create ~vm ~store ~name);
        pump ~vm ~store ~name conn
      end
    | Wire d -> begin
      match Frame.extract conn.input with
      | Need _ -> ()
      | Bad err ->
        send conn (Frame.encode (Dispatch.framing_error d err));
        close_conn conn
      | Got (body, consumed) ->
        drop conn consumed;
        send conn (Frame.encode (Dispatch.handle d body));
        if d.Dispatch.closing then close_conn conn else pump ~vm ~store ~name conn
    end
    | Http ->
      (* One request, one page, close — the dashboard speaks HTTP/1.0. *)
      let has sub =
        let n = String.length sub and len = String.length conn.input in
        let rec go i = i + n <= len && (String.sub conn.input i n = sub || go (i + 1)) in
        go 0
      in
      if has "\r\n\r\n" || has "\n\n" then begin
        send conn (http_answer vm conn.input);
        close_conn conn
      end
      else if String.length conn.input > max_http_request then close_conn conn

let handle_readable ~vm ~store ~name conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn conn (* EOF — mid-request disconnects land here too *)
  | n ->
    conn.input <- conn.input ^ Bytes.sub_string chunk 0 n;
    pump ~vm ~store ~name conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let listen_on addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 64;
  fd

let run ?tcp_port ~socket ~store ~vm () =
  install_signals ();
  stop_requested := false;
  if Sys.file_exists socket then Sys.remove socket;
  let name = Filename.basename socket in
  let listeners =
    listen_on (Unix.ADDR_UNIX socket)
    ::
    (match tcp_port with
    | None -> []
    | Some port -> [ listen_on (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) ])
  in
  Printf.printf "hpjava server: listening on %s%s\n" socket
    (match tcp_port with
    | None -> ""
    | Some port -> Printf.sprintf " and 127.0.0.1:%d" port);
  flush stdout;
  let conns : conn list ref = ref [] in
  let accept lfd =
    match Unix.accept lfd with
    | fd, _addr ->
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO write_timeout;
      conns := { fd; kind = Sniffing; input = ""; dead = false } :: !conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  while not !stop_requested do
    conns := List.filter (fun c -> not c.dead) !conns;
    let watched = listeners @ List.map (fun c -> c.fd) !conns in
    match Unix.select watched [] [] 0.25 with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if List.memq fd listeners then accept fd
          else
            match List.find_opt (fun c -> c.fd == fd) !conns with
            | Some conn -> handle_readable ~vm ~store ~name conn
            | None -> ())
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful exit: every open session is aborted (no leaks), the store
     is made durable, and the socket path is removed. *)
  List.iter close_conn !conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (try Store.stabilise store
   with Failure.Shard_degraded _ | Invalid_argument _ -> ());
  if Sys.file_exists socket then ( try Sys.remove socket with Sys_error _ -> ());
  Printf.printf "hpjava server: shut down\n";
  flush stdout
