(** Wire framing: every message travels as
    [magic "hpw1"][u32 BE body length][u32 BE CRC32(body)][body].

    The magic makes protocol sniffing deterministic (an HTTP dashboard
    request never starts with it); the CRC (the store's own
    {!Pstore.Codec.crc32}) rejects corrupted frames before any field is
    decoded.  Framing has no resynchronisation point: after a framing
    violation the connection answers one typed error frame and dies. *)

val magic : string
val header_len : int

val max_body : int
(** Hard body-size bound (1 MiB): a hostile length field can never make
    the server allocate unboundedly. *)

type error =
  | Bad_magic
  | Too_large of int
  | Bad_crc

val describe_error : error -> string

val put_u32 : Buffer.t -> int -> unit
(** Append a u32 big-endian (shared with the protocol operand codec). *)

val get_u32 : string -> int -> int
(** Read a u32 big-endian at an offset (bounds are the caller's job). *)

val encode : string -> string
(** Wrap a body into one frame. *)

(** Incremental extraction over accumulated input: one verified body and
    the bytes it consumed, a request for more input, or an
    unrecoverable framing violation. *)
type extract =
  | Got of string * int
  | Need of int
  | Bad of error

val extract : string -> extract

(** {1 Blocking I/O — the client's path and test probes} *)

exception Closed
(** The peer hung up (EOF / EPIPE / ECONNRESET). *)

val really_write : Unix.file_descr -> string -> unit
val really_read : Unix.file_descr -> int -> string
val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string
(** One whole frame off a blocking socket.
    @raise Closed on EOF.
    @raise Stdlib.Failure on a framing violation. *)
