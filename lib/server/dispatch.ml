(* Per-connection request dispatch.

   Each authenticated connection owns one Store.Session: its Hello pins
   a snapshot, edits buffer root bindings in it, and Commit publishes
   them under first-committer-wins conflict detection.  A commit, abort
   or conflict consumes the session, so a fresh one (new snapshot) is
   opened immediately — the client retries a lost race by simply
   re-sending its edit, no reconnect needed.

   Every failure a request can hit is answered as one typed frame:
   Conflict for a lost commit race, Refused with a stable error code for
   everything else.  Nothing a client sends may kill the server, and
   nothing may leak a session — [teardown] aborts whatever is open when
   the connection dies, however it dies. *)

open Pstore
open Minijava
open Hyperprog

type conn = {
  vm : Rt.t;
  store : Store.t;
  server_name : string;
  mutable password : string option;  (* set by a successful Hello *)
  mutable session : Store.Session.t option;
  mutable closing : bool;  (* Bye received: close after the answer is written *)
}

let create ~vm ~store ~name =
  { vm; store; server_name = name; password = None; session = None; closing = false }

let obs c = Store.obs c.store
let refused code message = Protocol.Refused { code; message }

(* The connection's snapshot session.  Dispatch only runs it after Hello
   opened one, but a commit that raised something unexpected may have
   consumed it — reopen rather than crash. *)
let session c =
  match c.session with
  | Some s when Store.Session.is_open s -> s
  | Some _ | None ->
    let s = Store.open_session c.store in
    c.session <- Some s;
    s

let fresh_session c = c.session <- Some (Store.open_session c.store)

let teardown c =
  (match c.session with
  | Some s when Store.Session.is_open s -> ( try Store.Session.abort s with _ -> ())
  | Some _ | None -> ());
  c.session <- None;
  c.password <- None

(* -- request execution ------------------------------------------------------- *)

let render_roots c =
  let s = session c in
  let names = Store.Session.root_names s in
  if names = [] then "no roots"
  else
    String.concat "\n"
      (List.map
         (fun name ->
           let v = Option.value (Store.Session.root s name) ~default:Pvalue.Null in
           Printf.sprintf "%-24s %s" name (Pvalue.to_string v))
         names)

let render_programs c =
  match Registry.live_programs c.vm with
  | [] -> "no live hyper-programs"
  | programs ->
    String.concat "\n"
      (List.map
         (fun (uid, oid) ->
           let name = Storage_form.class_name c.vm oid in
           Printf.sprintf "hp %d @%d %s" uid (Oid.to_int oid)
             (if name = "" then "(unnamed)" else name))
         programs)

let render_stats c =
  let o = obs c in
  let st = Store.Session.stats (session c) in
  String.concat "\n"
    [
      Printf.sprintf "server: %s" c.server_name;
      Printf.sprintf "operations: %d" (Obs.total o);
      Printf.sprintf "net requests: %d" (Obs.count o Obs.Net_request);
      Printf.sprintf "net errors: %d" (Obs.count o Obs.Net_error);
      Printf.sprintf "auth refusals: %d" (Auth.refusal_count ());
      Printf.sprintf "open sessions: %d" (Store.open_session_count c.store);
      Printf.sprintf "session commits: %d" (Obs.count o Obs.Session_commit);
      Printf.sprintf "commit conflicts: %d" (Obs.count o Obs.Conflict);
      Printf.sprintf "live objects: %d" st.Store.live;
    ]

let render_health c =
  let st = Store.Session.stats (session c) in
  String.concat "\n"
    [
      Printf.sprintf "healthy: %s" (if Store.healthy c.store then "yes" else "no");
      Printf.sprintf "live objects: %d" st.Store.live;
      Printf.sprintf "quarantined: %d" st.Store.quarantined;
      Printf.sprintf "unhealthy shards: %d" st.Store.unhealthy_shards;
      Printf.sprintf "open sessions: %d" (Store.open_session_count c.store);
    ]

let exec c (req : Protocol.request) : Protocol.response =
  match req with
  | Hello _ when c.password <> None ->
    refused Protocol.code_proto "already authenticated; one hello per connection"
  | Hello { version; password } -> begin
    match Auth.validate c.vm ~version ~password with
    | Error { Auth.code; message } -> refused code message
    | Ok () ->
      c.password <- Some password;
      let s = session c in
      Hello_ok { session = Store.Session.id s; server = c.server_name }
  end
  | _ when c.password = None ->
    refused Protocol.code_auth "hello first: authenticate with the registry password"
  | Browse Roots -> Ok_text (render_roots c)
  | Browse Census -> Ok_text (String.trim (Browser.Render.census c.store))
  | Browse (Root name) -> begin
    match Store.Session.root (session c) name with
    | Some v -> Ok_text (Printf.sprintf "%s = %s" name (Pvalue.to_string v))
    | None -> refused Protocol.code_not_found (Printf.sprintf "no root named %s" name)
  end
  | Browse Programs -> Ok_text (render_programs c)
  | Get_link { hp; link } -> begin
    let password = Option.get c.password in
    match Registry.try_get_link c.vm ~password ~hp ~link with
    | Ok v -> Ok_text (Pvalue.to_string v)
    | Error (Failure.Collected _ as f) | Error (Failure.Bad_index _ as f) ->
      refused Protocol.code_not_found (Failure.describe f)
    | Error f -> refused Protocol.code_broken_link (Failure.describe f)
  end
  | Edit { root; source } ->
    if root = "" then refused Protocol.code_refused "edit needs a nonempty root name"
    else begin
      let password = Option.get c.password in
      (* The storage form and registry entry are shared-state writes
         (safe alongside snapshots: fresh objects, append-only vector);
         only the root binding goes through the session, so that is the
         write the commit race is decided on. *)
      let hp = Hyper_source.to_storage c.vm source in
      let uid = Registry.add_hp c.vm ~password hp in
      let s = session c in
      Store.Session.set_root s root (Pvalue.Ref hp);
      Ok_text
        (Printf.sprintf "edit buffered in session %d: root %s -> hyper-program %d (@%d); commit to publish"
           (Store.Session.id s) root uid (Oid.to_int hp))
    end
  | Compile { source } ->
    let rcs = Jcompiler.compile_and_load ~redefine:true c.vm [ source ] in
    Store.stabilise c.store;
    Ok_text
      (Printf.sprintf "compiled %s"
         (String.concat ", " (List.map (fun rc -> rc.Rt.rc_name) rcs)))
  | Commit -> begin
    let s = session c in
    let id = Store.Session.id s in
    let n = Store.Session.buffered_ops s in
    match Store.Session.commit s with
    | () ->
      fresh_session c;
      Ok_text (Printf.sprintf "committed session %d: %d op%s" id n (if n = 1 then "" else "s"))
    | exception Failure.Commit_conflict { session = sid; oids; keys } ->
      (* The losing session is already aborted; hand the typed conflict
         to the client and open the fresh snapshot it will retry under. *)
      fresh_session c;
      Conflict { session = sid; oids = List.map Oid.to_int oids; keys }
  end
  | Abort ->
    let s = session c in
    let id = Store.Session.id s in
    let n = Store.Session.buffered_ops s in
    Store.Session.abort s;
    fresh_session c;
    Ok_text
      (Printf.sprintf "aborted session %d: %d buffered op%s discarded" id n
         (if n = 1 then "" else "s"))
  | Stats -> Ok_text (render_stats c)
  | Health -> Ok_text (render_health c)
  | Bye ->
    c.closing <- true;
    Ok_text "bye"

(* Every exception a request can raise, folded into the typed error
   vocabulary.  The catch-all is deliberate: a server that dies on a
   surprising exception fails every other connected client too. *)
let exec_catching c req =
  try exec c req with
  | Failure.Commit_conflict _ as e -> raise e (* handled at the Commit site *)
  | Failure.Shard_degraded { shard; state; reason } ->
    refused Protocol.code_degraded
      (Printf.sprintf "shard %d is %s (%s); writes refused until repair" shard state reason)
  | Rt.Jerror { jclass; message; _ } ->
    refused Protocol.code_vm (Printf.sprintf "%s: %s" jclass message)
  | Jcompiler.Compile_error e ->
    refused Protocol.code_compile (Format.asprintf "%a" Jcompiler.pp_error e)
  | Hyper_source.Format_error msg -> refused Protocol.code_bad_source msg
  | Invalid_argument msg -> refused Protocol.code_refused msg
  | Stdlib.Failure msg -> refused Protocol.code_internal msg
  | Stack_overflow -> refused Protocol.code_internal "stack overflow"
  | e -> refused Protocol.code_internal (Printexc.to_string e)

(* One request body in, one response body out. *)
let handle c body =
  Obs.incr (obs c) Obs.Net_request;
  let resp =
    match Protocol.decode_request body with
    | Error msg -> refused Protocol.code_proto msg
    | Ok req -> exec_catching c req
  in
  (match resp with
  | Protocol.Refused _ -> Obs.incr (obs c) Obs.Net_error
  | _ -> ());
  Protocol.encode_response resp

(* A framing violation also gets one typed answer (then the server
   closes the connection — framing has no resync point). *)
let framing_error c err =
  Obs.incr (obs c) Obs.Net_request;
  Obs.incr (obs c) Obs.Net_error;
  Protocol.encode_response (refused Protocol.code_proto (Frame.describe_error err))
