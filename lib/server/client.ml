(* Blocking wire-protocol client: what `hpjava connect`, the netload
   workload and the test probes speak.

   connect performs the Hello handshake; a Refused answer (bad password,
   version skew) raises the typed [Server_refused], while an unreachable
   server surfaces as the Unix error it is — callers map the two onto
   different exit codes. *)

type t = {
  fd : Unix.file_descr;
  session : int;  (* the session id granted at Hello *)
  server : string;
}

exception Server_refused of {
  code : string;
  message : string;
}

let () =
  Printexc.register_printer (function
    | Server_refused { code; message } ->
      Some (Printf.sprintf "server refused (%s): %s" code message)
    | _ -> None)

let unix_addr path = Unix.ADDR_UNIX path
let tcp_addr host port = Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let rpc_fd fd req =
  Frame.write_frame fd (Protocol.encode_request req);
  match Protocol.decode_response (Frame.read_frame fd) with
  | Ok r -> r
  | Error msg -> failwith ("malformed response frame: " ^ msg)

let connect ?(password = Hyperprog.Registry.built_in_password) addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  match rpc_fd fd (Protocol.Hello { version = Protocol.version; password }) with
  | Protocol.Hello_ok { session; server } -> { fd; session; server }
  | Protocol.Refused { code; message } ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Server_refused { code; message })
  | r ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith ("unexpected hello answer: " ^ Protocol.describe_response r)

let rpc t req = rpc_fd t.fd req

let close t =
  (try ignore (rpc t Protocol.Bye) with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let session t = t.session
let server t = t.server
