(* Schema evolution through linguistic reflection (Section 7).

   "Since a hyper-programming system can ensure that the hyper-program
   source text is always available for any persistent class that was
   created within the system, it is possible to write an evolution program
   that updates the source, re-compiles it and reconstructs the persistent
   data."

   Evolving class C:
   1. fetch C's stored source (every class file carries it),
   2. archive the old class file (and with it the old source),
   3. transform the source and recompile it with the dynamic compiler —
      the linker redefines C, rebuilds the layouts of loaded subclasses,
      and reconstructs every store instance IN PLACE: oids are preserved,
      so every hyper-link to an evolved object remains valid,
   4. optionally run a user-supplied converter method (itself compiled by
      linguistic reflection) on each reconstructed instance. *)

open Pstore
open Minijava

exception Evolution_error of string

let evolution_error fmt = Format.kasprintf (fun s -> raise (Evolution_error s)) fmt

type result = {
  class_name : string;
  instances_updated : int;
  affected_classes : string list; (* C and its loaded subclasses *)
  old_version_blob : string; (* archive key of the previous class file *)
}

let bootstrap_prefixes = [ "java.lang"; "java.util"; "hyper."; "compiler." ]

let is_bootstrap name =
  List.exists
    (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
    bootstrap_prefixes

let source_of_class vm name =
  match Rt.find_class vm name with
  | Some rc -> rc.Rt.rc_classfile.Classfile.cf_source
  | None -> None

(* All loaded classes whose super chain passes through [name], excluding
   [name] itself. *)
let loaded_subclasses vm name =
  List.filter
    (fun cls -> (not (String.equal cls name)) && Rt.is_class_subtype vm cls name)
    vm.Rt.load_order

let archive_key name version = Printf.sprintf "minijava.class-archive:%s:v%d" name version

let archive_old_version vm name cf =
  let store = vm.Rt.store in
  let rec free_version v =
    if Store.blob store (archive_key name v) = None then v else free_version (v + 1)
  in
  let v = free_version 1 in
  let key = archive_key name v in
  Store.set_blob store key (Classfile.encode cf);
  key

let count_instances vm classes =
  let n = ref 0 in
  Pstore.Heap.iter
    (fun _ entry ->
      match entry with
      | Pstore.Heap.Record r when List.mem r.Pstore.Heap.class_name classes -> incr n
      | _ -> ())
    (Store.heap vm.Rt.store);
  !n

(* The evolution driver. *)
let evolve ?converter ?mode vm ~class_name ~new_source () =
  if is_bootstrap class_name then
    evolution_error "refusing to evolve bootstrap class %s" class_name;
  let old_rc =
    match Rt.find_class vm class_name with
    | Some rc -> rc
    | None -> evolution_error "class %s is not loaded" class_name
  in
  let affected = class_name :: loaded_subclasses vm class_name in
  let old_version_blob = archive_old_version vm class_name old_rc.Rt.rc_classfile in
  let instances = count_instances vm affected in
  (* Schema change: results compiled against the old shape of [class_name]
     must never be replayed (the key fingerprint already prevents hits,
     but purging also stops dead generations from accumulating). *)
  Compile_cache.purge vm;
  (* The dynamic compiler redefines the class; the linker migrates the
     instances (see Linker.load_or_redefine_batch). *)
  ignore (Dynamic_compiler.compile_strings ?mode vm ~names:[ class_name ] [ new_source ]);
  (* Run the user converter, if given: a class defining
     `public static void convert(C obj)`, compiled reflectively. *)
  (match converter with
  | None -> ()
  | Some converter_source -> begin
    let conv_rcs = Dynamic_compiler.compile_strings ?mode vm ~names:[] [ converter_source ] in
    let conv_rc =
      match conv_rcs with
      | rc :: _ -> rc
      | [] -> evolution_error "converter source defined no classes"
    in
    let desc = Printf.sprintf "(L%s;)V" class_name in
    Pstore.Heap.iter
      (fun oid entry ->
        match entry with
        | Pstore.Heap.Record r when String.equal r.Pstore.Heap.class_name class_name ->
          ignore
            (Vm.call_static vm ~cls:conv_rc.Rt.rc_name ~name:"convert" ~desc
               [ Pvalue.Ref oid ])
        | _ -> ())
      (Store.heap vm.Rt.store)
  end);
  { class_name; instances_updated = instances; affected_classes = affected; old_version_blob }

(* Evolve using the stored source and a source-to-source transform. *)
let evolve_with ?converter ?mode vm ~class_name ~transform () =
  match source_of_class vm class_name with
  | None -> evolution_error "no stored source for class %s" class_name
  | Some source -> evolve ?converter ?mode vm ~class_name ~new_source:(transform source) ()

(* List archived versions of a class (version, class file). *)
let archived_versions vm class_name =
  let store = vm.Rt.store in
  let rec go v acc =
    match Store.blob store (archive_key class_name v) with
    | Some data -> go (v + 1) ((v, Classfile.decode data) :: acc)
    | None -> List.rev acc
  in
  go 1 []
