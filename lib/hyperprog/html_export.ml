(* HTML publishing of hyper-programs (Section 6, Future Work — implemented
   here): each hyper-program is rendered as an HTML page with its
   hyper-links represented as URLs, as was done to publish the Napier88
   compiler source.  Links into the store use a store:// URL scheme
   carrying the oid, so a published page can be navigated alongside a
   store dump. *)

open Pstore
open Minijava

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The URL a hyper-link is rendered as.  Components (class names, member
   names, descriptors, printed values) are raw data here; whoever embeds
   the URL in markup must escape it — [render_anchor] does. *)
let link_url = function
  | Hyperlink.L_object oid -> Printf.sprintf "store://object/%d" (Oid.to_int oid)
  | Hyperlink.L_primitive v -> Printf.sprintf "store://value/%s" (Pvalue.to_string v)
  | Hyperlink.L_type ty -> Printf.sprintf "store://type/%s" (Jtype.descriptor ty)
  | Hyperlink.L_static_method { cls; name; desc } ->
    Printf.sprintf "store://method/%s.%s%s" cls name desc
  | Hyperlink.L_instance_method { cls; name; desc } ->
    Printf.sprintf "store://method/%s.%s%s" cls name desc
  | Hyperlink.L_constructor { cls; desc } -> Printf.sprintf "store://constructor/%s%s" cls desc
  | Hyperlink.L_static_field { cls; name } -> Printf.sprintf "store://field/%s.%s" cls name
  | Hyperlink.L_instance_field { target; cls; name } ->
    Printf.sprintf "store://field/%d/%s.%s" (Oid.to_int target) cls name
  | Hyperlink.L_array_element { array; index } ->
    Printf.sprintf "store://element/%d/%d" (Oid.to_int array) index

(* Class names, descriptors and printed values are user-controlled text:
   escaping the whole href closes the attribute-breakout a quote in a
   class name would otherwise open. *)
let render_anchor ?(href = fun _ link -> link_url link) i link label =
  Printf.sprintf "<a class=\"hyperlink\" href=\"%s\">%s</a>" (escape (href i link))
    (escape label)

(* Render a hyper-program body: text with anchors spliced in at link
   positions.  [href] maps (link number, link) to the URL to emit —
   the live dashboard points links at its own pages. *)
let render_body ?href (flat : Editing_form.flat) =
  let expansions =
    List.mapi
      (fun i (pos, link, label) -> (pos, render_anchor ?href i link label))
      flat.Editing_form.flat_links
    |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let text = flat.Editing_form.text in
  let buf = Buffer.create (String.length text + 256) in
  let rec go cursor = function
    | [] -> Buffer.add_string buf (escape (String.sub text cursor (String.length text - cursor)))
    | (pos, anchor) :: rest ->
      Buffer.add_string buf (escape (String.sub text cursor (pos - cursor)));
      Buffer.add_string buf anchor;
      go pos rest
  in
  go 0 expansions;
  Buffer.contents buf

let page_style =
  "body { font-family: monospace; background: #fdfdfd; }\n\
   pre { border: 1px solid #ccc; padding: 1em; }\n\
   a.hyperlink { background: #dde8ff; border: 1px solid #88a; border-radius: 3px;\n\
  \  padding: 0 0.3em; text-decoration: none; }\n"

(* A full HTML page for one hyper-program. *)
let page ~title body =
  Printf.sprintf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n<style>\n%s</style></head>\n\
     <body>\n<h1>%s</h1>\n<pre>%s</pre>\n</body></html>\n"
    (escape title) page_style (escape title) body

let export_form form =
  let flat = Editing_form.to_flat form in
  page ~title:form.Editing_form.class_name (render_body flat)

let flat_of vm hp_oid =
  {
    Editing_form.text = Storage_form.text vm hp_oid;
    flat_links =
      List.map
        (fun (s : Storage_form.link_spec) ->
          (s.Storage_form.pos, s.Storage_form.link, s.Storage_form.label))
        (Storage_form.links vm hp_oid);
  }

let export vm hp_oid = page ~title:(Storage_form.class_name vm hp_oid) (render_body (flat_of vm hp_oid))

(* An index page over several hyper-programs. *)
let index_page (entries : (string * string) list) =
  let items =
    entries
    |> List.map (fun (name, href) ->
           Printf.sprintf "<li><a href=\"%s\">%s</a></li>" (escape href) (escape name))
    |> String.concat "\n"
  in
  Printf.sprintf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>Hyper-programs</title></head>\n\
     <body><h1>Published hyper-programs</h1><ul>\n%s\n</ul></body></html>\n"
    items

(* Export every live registered hyper-program into a directory. *)
let export_all vm ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let entries =
    List.map
      (fun (uid, hp_oid) ->
        let name = Storage_form.class_name vm hp_oid in
        let name = if name = "" then Printf.sprintf "hp%d" uid else name in
        let file = Printf.sprintf "%s.html" name in
        let oc = open_out (Filename.concat dir file) in
        output_string oc (export vm hp_oid);
        close_out oc;
        (name, file))
      (Registry.live_programs vm)
  in
  let oc = open_out (Filename.concat dir "index.html") in
  output_string oc (index_page entries);
  close_out oc;
  List.map fst entries

(* -- the live dashboard (served by the hyper-programming server) ------------

   The same Section 6 publishing, but rendered on demand over the open
   store instead of exported to files: hyper-links become URLs into the
   dashboard itself, and each page carries a broken-link census computed
   with the registry's salvage reads.  Every string that reaches these
   pages — class names, labels, program text, failure reasons (including
   the BrokenLink placeholder's) — is user-controlled and escaped. *)

let html_page ~title body_html =
  Printf.sprintf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n<style>\n%s</style></head>\n\
     <body>\n<h1>%s</h1>\n%s\n<p><a href=\"/\">index</a></p>\n</body></html>\n"
    (escape title) page_style (escape title) body_html

let display_name vm uid hp_oid =
  let name = Storage_form.class_name vm hp_oid in
  if name = "" then Printf.sprintf "hp%d" uid else name

(* One salvage read per link: Ok with the printed value, or the typed
   Failure — never an exception (the built-in password is always
   accepted). *)
let link_census vm ~uid hp_oid =
  Storage_form.links vm hp_oid
  |> List.mapi (fun i (s : Storage_form.link_spec) ->
         ( i,
           s.Storage_form.label,
           Registry.try_get_link vm ~password:Registry.built_in_password ~hp:uid ~link:i ))

let live_page vm ~uid =
  match List.assoc_opt uid (Registry.live_programs vm) with
  | None -> None
  | Some hp_oid ->
    let href i _link = Printf.sprintf "/hp/%d/link/%d" uid i in
    let census = link_census vm ~uid hp_oid in
    let rows =
      census
      |> List.map (fun (i, label, status) ->
             Printf.sprintf "<li><a href=\"/hp/%d/link/%d\">link %d</a> <code>%s</code> — %s</li>"
               uid i i (escape label)
               (match status with
               | Ok v -> Printf.sprintf "ok: <code>%s</code>" (escape (Pvalue.to_string v))
               | Error f ->
                 Printf.sprintf "<b>broken</b>: %s" (escape (Failure.describe f))))
      |> String.concat "\n"
    in
    let broken = List.length (List.filter (fun (_, _, s) -> Result.is_error s) census) in
    Some
      (html_page
         ~title:(Printf.sprintf "hyper-program %d: %s" uid (display_name vm uid hp_oid))
         (Printf.sprintf "<pre>%s</pre>\n<h2>hyper-links (%d, %d broken)</h2>\n<ul>\n%s\n</ul>"
            (render_body ~href (flat_of vm hp_oid))
            (List.length census) broken rows))

let live_link_page vm ~uid ~link =
  let title = Printf.sprintf "hyper-program %d, link %d" uid link in
  match Registry.try_get_link vm ~password:Registry.built_in_password ~hp:uid ~link with
  | Ok v ->
    html_page ~title
      (Printf.sprintf "<p>value: <code>%s</code></p>\n<p><a href=\"/hp/%d\">back to the program</a></p>"
         (escape (Pvalue.to_string v)) uid)
  | Error f ->
    html_page ~title
      (Printf.sprintf "<p><b>broken link</b>: %s</p>\n<p><a href=\"/hp/%d\">back to the program</a></p>"
         (escape (Failure.describe f)) uid)

let live_index vm =
  let programs = Registry.live_programs vm in
  let total_broken = ref 0 in
  let rows =
    programs
    |> List.map (fun (uid, hp_oid) ->
           let census = link_census vm ~uid hp_oid in
           let broken = List.length (List.filter (fun (_, _, s) -> Result.is_error s) census) in
           total_broken := !total_broken + broken;
           Printf.sprintf "<li><a href=\"/hp/%d\">%s</a> — %d link%s%s</li>" uid
             (escape (display_name vm uid hp_oid))
             (List.length census)
             (if List.length census = 1 then "" else "s")
             (if broken > 0 then Printf.sprintf ", <b>%d broken</b>" broken else ""))
    |> String.concat "\n"
  in
  html_page ~title:"Live hyper-programs"
    (Printf.sprintf "<p>%d program%s, %d broken link%s</p>\n<ul>\n%s\n</ul>"
       (List.length programs)
       (if List.length programs = 1 then "" else "s")
       !total_broken
       (if !total_broken = 1 then "" else "s")
       rows)

(* Plain-text printing (the paper's §6 "printing of hyper-programs is
   hindered by the presence of hyper-links"): links become bracketed
   footnote indices, with the link descriptions listed after the text. *)
let plain_text vm hp_oid =
  let text = Storage_form.text vm hp_oid in
  let links = Storage_form.links vm hp_oid in
  let buf = Buffer.create (String.length text + 256) in
  let expansions =
    List.mapi
      (fun i (s : Storage_form.link_spec) -> (s.Storage_form.pos, Printf.sprintf "[%d]" (i + 1)))
      links
    |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let rec go cursor = function
    | [] -> Buffer.add_substring buf text cursor (String.length text - cursor)
    | (pos, marker) :: rest ->
      Buffer.add_substring buf text cursor (pos - cursor);
      Buffer.add_string buf marker;
      go pos rest
  in
  go 0 expansions;
  if links <> [] then begin
    Buffer.add_string buf "---\n";
    List.iteri
      (fun i (s : Storage_form.link_spec) ->
        Buffer.add_string buf
          (Format.asprintf "[%d] %s = %a\n" (i + 1) s.Storage_form.label Hyperlink.pp
             s.Storage_form.link))
      links
  end;
  Buffer.contents buf
