(** The persistent compiled-class cache.

    Keys the result of a dynamic compile (the encoded class-file batch)
    by a content hash of the sources plus a fingerprint of the visible
    class environment, and stores it in the store's blob table
    ([hyper.ccache:<hex>]), so cached compiles survive stabilise and
    reopen.  The environment fingerprint excludes the classes the sources
    themselves define (they are outputs, not inputs), and any schema
    change to a visible class changes its class file and therefore the
    key — stale entries can never hit.  [Evolution] also calls {!purge}
    after a successful evolve.

    A hit decodes the batch and relinks it through
    [Linker.load_or_redefine_batch]; a miss (or any failure computing the
    key or decoding an entry) falls through to the real compiler, so a
    cached system is observably identical to a cold one. *)

open Minijava

val blob_prefix : string
(** ["hyper.ccache:"] — every cache blob key starts with this (the
    resident-key index, {!index_blob}, shares the prefix). *)

val index_blob : string

val default_capacity : int
(** Resident entries retained per store (LRU beyond that). *)

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** resident cache entries *)
  capacity : int;
}

val enabled : Rt.t -> bool
(** Per-store switch, on by default.  State lives in [Store.props], so a
    cached and a cold store can coexist in one process. *)

val set_enabled : Rt.t -> bool -> unit

val stats : Rt.t -> stats

val purge : Rt.t -> unit
(** Drop every cache blob and the index (schema-evolution hook). *)

val cached : Rt.t -> string list -> compile:(unit -> Rt.rclass list) -> Rt.rclass list
(** [cached vm sources ~compile] answers from the cache when possible,
    otherwise runs [compile] and remembers its result.  Bumps the store's
    [Obs.Cache_hit] / [Obs.Cache_miss] counters. *)
