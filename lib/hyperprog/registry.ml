(* The hyper-program registry (Figure 7): a password-protected, persistent
   vector of WEAK references to every hyper-program that has been
   translated and compiled.

   The weak references are the paper's JDK 1.2 plan, implemented here: a
   registered hyper-program can still be garbage collected once no user
   references remain, yet while it lives, compiled textual forms can reach
   its hyper-linked entities through getLink.  Note that a live
   hyper-program strongly references its HyperLinkHP instances, which
   strongly reference the linked entities — so the entities stay reachable
   as long as either the hyper-program or the compiled form's user keeps
   them. *)

open Pstore
open Minijava

let root_name = "hyper.registry"

(* The password is "built into the system" (Section 4.2). *)
let built_in_password = "passwd"

let bad_password () =
  Rt.jerror "java.lang.SecurityException" "wrong password for the hyper-program registry"

let field vm oid name = Store.field Rt.(vm.store) oid (Rt.field_slot vm Hyper_src.registry_class name)

let set_field vm oid name v =
  Store.set_field Rt.(vm.store) oid (Rt.field_slot vm Hyper_src.registry_class name) v

(* -- getLink memoisation ---------------------------------------------------

   Compiled textual forms call getLink on every hyper-link dereference,
   and the resolution walks the registry object, a weak cell, the
   hyper-program's storage form and the link's health checks — a dozen
   store reads for an answer that almost never changes.  A bounded
   per-store memo caches the full [try_get_link] result per (hp, link).

   Invalidation is two-tier.  Registry-API mutations ([add_hp], [prune])
   flush explicitly.  Everything that can change an answer WITHOUT going
   through this module — quarantine add/clear (operator or scrubber), a
   GC sweep clearing weak targets, transaction rollback, evolution's
   in-place instance surgery — bumps [Store.invalidation_epoch], which is
   revalidated before every memo read.  Storage forms are immutable after
   creation (editing builds a fresh instance), so a cached link list
   cannot go stale behind our back.  Raw field writes to the registry
   object itself (not expressible through this module's API) are the one
   untracked path. *)

type memo_stats = {
  hits : int;
  misses : int;
  entries : int;
  capacity : int;
}

type memo = {
  mutable m_enabled : bool;
  mutable m_hits : int;
  mutable m_misses : int;
  mutable m_epoch : int; (* Store.invalidation_epoch at last validation *)
  m_table : (int * int, (Pvalue.t, Failure.t) result) Hashtbl.t;
  mutable m_password : string option; (* the registry password, as last read *)
  m_capacity : int;
}

let memo_capacity = 512
let memo_key : memo Props.key = Props.new_key ()

let memo_of vm =
  let store = Rt.(vm.store) in
  Props.get_or_create (Store.props store) memo_key (fun () ->
      {
        m_enabled = true;
        m_hits = 0;
        m_misses = 0;
        m_epoch = Store.invalidation_epoch store;
        m_table = Hashtbl.create 64;
        m_password = None;
        m_capacity = memo_capacity;
      })

let memo_flush m =
  Hashtbl.reset m.m_table;
  m.m_password <- None

(* Flush when a side channel (quarantine, gc, rollback, mark_dirty)
   invalidated reads since the memo was last used. *)
let memo_validate vm m =
  let epoch = Store.invalidation_epoch Rt.(vm.store) in
  if epoch <> m.m_epoch then begin
    memo_flush m;
    m.m_epoch <- epoch
  end

let clear_memo vm = memo_flush (memo_of vm)
let memo_enabled vm = (memo_of vm).m_enabled

let set_memo_enabled vm flag =
  let m = memo_of vm in
  if not flag then memo_flush m;
  m.m_enabled <- flag

let memo_stats vm =
  let m = memo_of vm in
  {
    hits = m.m_hits;
    misses = m.m_misses;
    entries = Hashtbl.length m.m_table;
    capacity = m.m_capacity;
  }

(* Get or create the registry object rooted at [root_name]. *)
let ensure vm =
  let store = Rt.(vm.store) in
  match Store.root store root_name with
  | Some (Pvalue.Ref oid) -> oid
  | Some _ | None ->
    let reg = Rt.alloc_object vm Hyper_src.registry_class in
    let oid = match reg with Pvalue.Ref oid -> oid | _ -> assert false in
    set_field vm oid "password" (Rt.jstring vm built_in_password);
    let arr =
      Store.alloc_array store "Ljava.lang.Object;" (Array.make 8 Pvalue.Null)
    in
    set_field vm oid "programs" (Pvalue.Ref arr);
    set_field vm oid "count" (Pvalue.Int 0l);
    Store.set_root store root_name (Pvalue.Ref oid);
    oid

let read_password vm =
  let reg = ensure vm in
  match field vm reg "password" with
  | Pvalue.Ref soid -> Some (Store.get_string Rt.(vm.store) soid)
  | _ -> None

let check_password_m vm m password =
  let stored =
    if m.m_enabled then begin
      match m.m_password with
      | Some _ as s -> s
      | None ->
        let s = read_password vm in
        m.m_password <- s;
        s
    end
    else read_password vm
  in
  match stored with
  | Some s -> String.equal s password
  | None -> false

let check_password vm password =
  let m = memo_of vm in
  memo_validate vm m;
  check_password_m vm m password

let count vm =
  let reg = ensure vm in
  match field vm reg "count" with
  | Pvalue.Int n -> Int32.to_int n
  | _ -> 0

let programs_array vm reg =
  match field vm reg "programs" with
  | Pvalue.Ref arr -> arr
  | _ -> Rt.jerror "java.lang.InternalError" "registry programs array missing"

(* The weak cell at index i, if any. *)
let weak_at vm idx =
  let reg = ensure vm in
  let arr = programs_array vm reg in
  if idx < 0 || idx >= count vm then None
  else
    match Store.elem Rt.(vm.store) arr idx with
    | Pvalue.Ref cell -> Some cell
    | _ -> None

(* The hyper-program at index i: Null if it has been garbage collected. *)
let hp_at vm idx =
  match weak_at vm idx with
  | None -> Pvalue.Null
  | Some cell -> (Store.get_weak Rt.(vm.store) cell).Pstore.Heap.target

let grow vm reg needed =
  let store = Rt.(vm.store) in
  let arr = programs_array vm reg in
  let len = Store.array_length store arr in
  if needed > len then begin
    let bigger = Store.alloc_array store "Ljava.lang.Object;" (Array.make (max needed (2 * len)) Pvalue.Null) in
    for i = 0 to len - 1 do
      Store.set_elem store bigger i (Store.elem store arr i)
    done;
    set_field vm reg "programs" (Pvalue.Ref bigger)
  end

(* Register a hyper-program (idempotent).  Returns its unique id — its
   offset in the persistent vector, as in the paper. *)
let add_hp vm ~password hp_oid =
  if not (check_password vm password) then bad_password ();
  let store = Rt.(vm.store) in
  let existing = Storage_form.uid vm hp_oid in
  let still_there =
    existing >= 0
    &&
    match hp_at vm existing with
    | Pvalue.Ref oid -> Oid.equal oid hp_oid
    | _ -> false
  in
  if still_there then existing
  else begin
    clear_memo vm;
    let reg = ensure vm in
    let n = count vm in
    grow vm reg (n + 1);
    let arr = programs_array vm reg in
    let cell = Store.alloc_weak store (Pvalue.Ref hp_oid) in
    Store.set_elem store arr n (Pvalue.Ref cell);
    set_field vm reg "count" (Pvalue.Int (Int32.of_int (n + 1)));
    Storage_form.set_uid vm hp_oid n;
    n
  end

(* -- link retrieval with degradation ------------------------------------- *)

(* Health of a HyperLinkHP instance: the instance itself, and the entity
   its hyperLinkObject field references, must both be readable.  Both
   checks report through the shared {!Failure.t}, so this is one match
   per hop. *)
let link_damage vm link_oid =
  let store = Rt.(vm.store) in
  let slot = Rt.field_slot vm Hyper_src.hyper_link_class "hyperLinkObject" in
  match Store.try_field store link_oid slot with
  | Error e -> Some e
  | Ok (Pvalue.Ref target) -> begin
    match Store.try_get store target with
    | Ok _ -> None
    | Error e -> Some e
  end
  | Ok _ -> None

(* Retrieve a HyperLinkHP instance (the getLink of Figure 9), reporting
   failure as data rather than raising: broken links degrade. *)
let resolve_link vm ~hp ~link =
  match hp_at vm hp with
  | Pvalue.Ref hp_oid -> begin
    match Storage_form.link_oids vm hp_oid with
    | exception Quarantine.Quarantined (oid, reason) ->
      (* the hyper-program's own storage form is damaged *)
      Error (Failure.Quarantined { oid; reason })
    | link_oids -> begin
      match List.nth_opt link_oids link with
      | None ->
        Error
          (Failure.Bad_index
             { container = Printf.sprintf "hyper-program %d" hp; index = link })
      | Some link_oid -> begin
        match link_damage vm link_oid with
        | Some damage -> Error damage
        | None -> Ok (Pvalue.Ref link_oid)
      end
    end
  end
  | _ -> Error (Failure.Collected hp)

let try_get_link vm ~password ~hp ~link =
  let obs = Store.obs Rt.(vm.store) in
  let m = memo_of vm in
  memo_validate vm m;
  if not (check_password_m vm m password) then bad_password ();
  (* the span label costs a [sprintf]: only pay it while tracing *)
  let label =
    if Obs.enabled obs then Some (Printf.sprintf "hp=%d link=%d" hp link)
    else None
  in
  Obs.span obs Obs.Get_link ?label (fun () ->
      if not m.m_enabled then resolve_link vm ~hp ~link
      else begin
        match Hashtbl.find_opt m.m_table (hp, link) with
        | Some r ->
          m.m_hits <- m.m_hits + 1;
          Obs.incr obs Obs.Cache_hit;
          r
        | None ->
          let r = resolve_link vm ~hp ~link in
          m.m_misses <- m.m_misses + 1;
          Obs.incr obs Obs.Cache_miss;
          if Hashtbl.length m.m_table >= m.m_capacity then Hashtbl.reset m.m_table;
          Hashtbl.replace m.m_table (hp, link) r;
          r
      end)

(* A hyper.BrokenLink instance standing in for an unreachable target:
   compiled textual forms receive it from getLink instead of an
   exception, so a single corrupt entity does not kill the program. *)
let broken_link_value vm ~link damage =
  if not (Rt.is_loaded vm Hyper_src.broken_link_class) then Pvalue.Null
  else begin
    let store = Rt.(vm.store) in
    let v = Rt.alloc_object vm Hyper_src.broken_link_class in
    let oid = match v with Pvalue.Ref oid -> oid | _ -> assert false in
    let set name value =
      Store.set_field store oid (Rt.field_slot vm Hyper_src.broken_link_class name) value
    in
    set "label" (Rt.jstring vm (Printf.sprintf "broken link %d" link));
    set "reason" (Rt.jstring vm (Failure.describe damage));
    v
  end

(* The raising getLink: collected programs and bad indices keep their
   paper-specified exceptions, but a quarantined (or dangling) target
   degrades to a BrokenLink instance instead of killing the caller. *)
let get_link vm ~password ~hp ~link =
  match try_get_link vm ~password ~hp ~link with
  | Ok v -> v
  | Error (Failure.Collected hp) ->
    Rt.jerror "java.lang.IllegalStateException"
      "hyper-program %d has been garbage collected" hp
  | Error (Failure.Bad_index { index; _ }) ->
    Rt.jerror "java.lang.IndexOutOfBoundsException" "hyper-link %d of hyper-program %d"
      index hp
  | Error ((Failure.Quarantined _ | Failure.Dangling _) as damage) ->
    broken_link_value vm ~link damage

(* Live registered programs: (uid, oid) pairs whose weak target survives. *)
let live_programs vm =
  List.init (count vm) (fun i ->
      match hp_at vm i with
      | Pvalue.Ref oid -> Some (i, oid)
      | _ -> None)
  |> List.filter_map Fun.id

(* -- maintenance ----------------------------------------------------------- *)

let origin_prefix = "hyper.origin:"

(* Blob anchors for Integrity.check: each hyper.origin:CLS blob names the
   registry uid a compiled class came from; while that program is live
   its oid must be live too.  (A dangling anchor means the weak cell
   still holds a reference the GC should have cleared — corruption.) *)
let origin_anchors vm =
  let store = Rt.(vm.store) in
  Store.blob_keys store
  |> List.filter_map (fun key ->
         if not (String.starts_with ~prefix:origin_prefix key) then None
         else
           match Option.bind (Store.blob store key) int_of_string_opt with
           | None -> None
           | Some uid -> begin
             match hp_at vm uid with
             | Pvalue.Ref oid -> Some (key, oid)
             | _ -> None
           end)

type prune_stats = {
  cleared_slots : int;
  removed_origins : int;
}

(* Prune dead registry entries after a GC: null out weak slots whose
   target was collected (uids stay stable — the slot is kept, emptied)
   and drop hyper.origin blobs that name a collected program.  The
   emptied weak cells themselves become garbage for the next GC pass.
   Quarantined programs are NOT pruned: they are live-but-corrupt, and
   their registry entry is what lets repair tools find them. *)
let prune vm =
  clear_memo vm;
  let store = Rt.(vm.store) in
  let reg = ensure vm in
  let arr = programs_array vm reg in
  let cleared = ref 0 in
  for i = 0 to count vm - 1 do
    match Store.elem store arr i with
    | Pvalue.Ref cell ->
      let dead =
        match Store.try_get store cell with
        | Error (Failure.Dangling _) -> true
        | Error _ -> false
        | Ok (Pstore.Heap.Weak c) -> begin
          match c.Pstore.Heap.target with
          | Pvalue.Ref oid -> not (Store.is_live store oid)
          | _ -> true (* cleared by the GC *)
        end
        | Ok _ -> false
      in
      if dead then begin
        Store.set_elem store arr i Pvalue.Null;
        incr cleared
      end
    | _ -> ()
  done;
  let removed = ref 0 in
  List.iter
    (fun key ->
      if String.starts_with ~prefix:origin_prefix key then begin
        let dead =
          match Option.bind (Store.blob store key) int_of_string_opt with
          | None -> true
          | Some uid -> ( match hp_at vm uid with Pvalue.Ref _ -> false | _ -> true)
        in
        if dead then begin
          Store.remove_blob store key;
          incr removed
        end
      end)
    (Store.blob_keys store);
  { cleared_slots = !cleared; removed_origins = !removed }
