(* The hyper-program registry (Figure 7): a password-protected, persistent
   vector of WEAK references to every hyper-program that has been
   translated and compiled.

   The weak references are the paper's JDK 1.2 plan, implemented here: a
   registered hyper-program can still be garbage collected once no user
   references remain, yet while it lives, compiled textual forms can reach
   its hyper-linked entities through getLink.  Note that a live
   hyper-program strongly references its HyperLinkHP instances, which
   strongly reference the linked entities — so the entities stay reachable
   as long as either the hyper-program or the compiled form's user keeps
   them. *)

open Pstore
open Minijava

let root_name = "hyper.registry"

(* The password is "built into the system" (Section 4.2). *)
let built_in_password = "passwd"

let bad_password () =
  Rt.jerror "java.lang.SecurityException" "wrong password for the hyper-program registry"

let field vm oid name = Store.field Rt.(vm.store) oid (Rt.field_slot vm Hyper_src.registry_class name)

let set_field vm oid name v =
  Store.set_field Rt.(vm.store) oid (Rt.field_slot vm Hyper_src.registry_class name) v

(* Get or create the registry object rooted at [root_name]. *)
let ensure vm =
  let store = Rt.(vm.store) in
  match Store.root store root_name with
  | Some (Pvalue.Ref oid) -> oid
  | Some _ | None ->
    let reg = Rt.alloc_object vm Hyper_src.registry_class in
    let oid = match reg with Pvalue.Ref oid -> oid | _ -> assert false in
    set_field vm oid "password" (Rt.jstring vm built_in_password);
    let arr =
      Store.alloc_array store "Ljava.lang.Object;" (Array.make 8 Pvalue.Null)
    in
    set_field vm oid "programs" (Pvalue.Ref arr);
    set_field vm oid "count" (Pvalue.Int 0l);
    Store.set_root store root_name (Pvalue.Ref oid);
    oid

let check_password vm password =
  let reg = ensure vm in
  match field vm reg "password" with
  | Pvalue.Ref soid -> String.equal (Store.get_string Rt.(vm.store) soid) password
  | _ -> false

let count vm =
  let reg = ensure vm in
  match field vm reg "count" with
  | Pvalue.Int n -> Int32.to_int n
  | _ -> 0

let programs_array vm reg =
  match field vm reg "programs" with
  | Pvalue.Ref arr -> arr
  | _ -> Rt.jerror "java.lang.InternalError" "registry programs array missing"

(* The weak cell at index i, if any. *)
let weak_at vm idx =
  let reg = ensure vm in
  let arr = programs_array vm reg in
  if idx < 0 || idx >= count vm then None
  else
    match Store.elem Rt.(vm.store) arr idx with
    | Pvalue.Ref cell -> Some cell
    | _ -> None

(* The hyper-program at index i: Null if it has been garbage collected. *)
let hp_at vm idx =
  match weak_at vm idx with
  | None -> Pvalue.Null
  | Some cell -> (Store.get_weak Rt.(vm.store) cell).Pstore.Heap.target

let grow vm reg needed =
  let store = Rt.(vm.store) in
  let arr = programs_array vm reg in
  let len = Store.array_length store arr in
  if needed > len then begin
    let bigger = Store.alloc_array store "Ljava.lang.Object;" (Array.make (max needed (2 * len)) Pvalue.Null) in
    for i = 0 to len - 1 do
      Store.set_elem store bigger i (Store.elem store arr i)
    done;
    set_field vm reg "programs" (Pvalue.Ref bigger)
  end

(* Register a hyper-program (idempotent).  Returns its unique id — its
   offset in the persistent vector, as in the paper. *)
let add_hp vm ~password hp_oid =
  if not (check_password vm password) then bad_password ();
  let store = Rt.(vm.store) in
  let existing = Storage_form.uid vm hp_oid in
  let still_there =
    existing >= 0
    &&
    match hp_at vm existing with
    | Pvalue.Ref oid -> Oid.equal oid hp_oid
    | _ -> false
  in
  if still_there then existing
  else begin
    let reg = ensure vm in
    let n = count vm in
    grow vm reg (n + 1);
    let arr = programs_array vm reg in
    let cell = Store.alloc_weak store (Pvalue.Ref hp_oid) in
    Store.set_elem store arr n (Pvalue.Ref cell);
    set_field vm reg "count" (Pvalue.Int (Int32.of_int (n + 1)));
    Storage_form.set_uid vm hp_oid n;
    n
  end

(* -- link retrieval with degradation ------------------------------------- *)

(* Health of a HyperLinkHP instance: the instance itself, and the entity
   its hyperLinkObject field references, must both be readable.  Both
   checks report through the shared {!Failure.t}, so this is one match
   per hop. *)
let link_damage vm link_oid =
  let store = Rt.(vm.store) in
  let slot = Rt.field_slot vm Hyper_src.hyper_link_class "hyperLinkObject" in
  match Store.try_field store link_oid slot with
  | Error e -> Some e
  | Ok (Pvalue.Ref target) -> begin
    match Store.try_get store target with
    | Ok _ -> None
    | Error e -> Some e
  end
  | Ok _ -> None

(* Retrieve a HyperLinkHP instance (the getLink of Figure 9), reporting
   failure as data rather than raising: broken links degrade. *)
let try_get_link vm ~password ~hp ~link =
  if not (check_password vm password) then bad_password ();
  Obs.span (Store.obs Rt.(vm.store)) Obs.Get_link
    ~label:(Printf.sprintf "hp=%d link=%d" hp link)
    (fun () ->
      match hp_at vm hp with
      | Pvalue.Ref hp_oid -> begin
        match Storage_form.link_oids vm hp_oid with
        | exception Quarantine.Quarantined (oid, reason) ->
          (* the hyper-program's own storage form is damaged *)
          Error (Failure.Quarantined { oid; reason })
        | link_oids -> begin
          match List.nth_opt link_oids link with
          | None ->
            Error
              (Failure.Bad_index
                 { container = Printf.sprintf "hyper-program %d" hp; index = link })
          | Some link_oid -> begin
            match link_damage vm link_oid with
            | Some damage -> Error damage
            | None -> Ok (Pvalue.Ref link_oid)
          end
        end
      end
      | _ -> Error (Failure.Collected hp))

(* A hyper.BrokenLink instance standing in for an unreachable target:
   compiled textual forms receive it from getLink instead of an
   exception, so a single corrupt entity does not kill the program. *)
let broken_link_value vm ~link damage =
  if not (Rt.is_loaded vm Hyper_src.broken_link_class) then Pvalue.Null
  else begin
    let store = Rt.(vm.store) in
    let v = Rt.alloc_object vm Hyper_src.broken_link_class in
    let oid = match v with Pvalue.Ref oid -> oid | _ -> assert false in
    let set name value =
      Store.set_field store oid (Rt.field_slot vm Hyper_src.broken_link_class name) value
    in
    set "label" (Rt.jstring vm (Printf.sprintf "broken link %d" link));
    set "reason" (Rt.jstring vm (Failure.describe damage));
    v
  end

(* The raising getLink: collected programs and bad indices keep their
   paper-specified exceptions, but a quarantined (or dangling) target
   degrades to a BrokenLink instance instead of killing the caller. *)
let get_link vm ~password ~hp ~link =
  match try_get_link vm ~password ~hp ~link with
  | Ok v -> v
  | Error (Failure.Collected hp) ->
    Rt.jerror "java.lang.IllegalStateException"
      "hyper-program %d has been garbage collected" hp
  | Error (Failure.Bad_index { index; _ }) ->
    Rt.jerror "java.lang.IndexOutOfBoundsException" "hyper-link %d of hyper-program %d"
      index hp
  | Error ((Failure.Quarantined _ | Failure.Dangling _) as damage) ->
    broken_link_value vm ~link damage

(* Live registered programs: (uid, oid) pairs whose weak target survives. *)
let live_programs vm =
  List.init (count vm) (fun i ->
      match hp_at vm i with
      | Pvalue.Ref oid -> Some (i, oid)
      | _ -> None)
  |> List.filter_map Fun.id

(* -- maintenance ----------------------------------------------------------- *)

let origin_prefix = "hyper.origin:"

(* Blob anchors for Integrity.check: each hyper.origin:CLS blob names the
   registry uid a compiled class came from; while that program is live
   its oid must be live too.  (A dangling anchor means the weak cell
   still holds a reference the GC should have cleared — corruption.) *)
let origin_anchors vm =
  let store = Rt.(vm.store) in
  Store.blob_keys store
  |> List.filter_map (fun key ->
         if not (String.starts_with ~prefix:origin_prefix key) then None
         else
           match Option.bind (Store.blob store key) int_of_string_opt with
           | None -> None
           | Some uid -> begin
             match hp_at vm uid with
             | Pvalue.Ref oid -> Some (key, oid)
             | _ -> None
           end)

type prune_stats = {
  cleared_slots : int;
  removed_origins : int;
}

(* Prune dead registry entries after a GC: null out weak slots whose
   target was collected (uids stay stable — the slot is kept, emptied)
   and drop hyper.origin blobs that name a collected program.  The
   emptied weak cells themselves become garbage for the next GC pass.
   Quarantined programs are NOT pruned: they are live-but-corrupt, and
   their registry entry is what lets repair tools find them. *)
let prune vm =
  let store = Rt.(vm.store) in
  let reg = ensure vm in
  let arr = programs_array vm reg in
  let cleared = ref 0 in
  for i = 0 to count vm - 1 do
    match Store.elem store arr i with
    | Pvalue.Ref cell ->
      let dead =
        match Store.try_get store cell with
        | Error (Failure.Dangling _) -> true
        | Error _ -> false
        | Ok (Pstore.Heap.Weak c) -> begin
          match c.Pstore.Heap.target with
          | Pvalue.Ref oid -> not (Store.is_live store oid)
          | _ -> true (* cleared by the GC *)
        end
        | Ok _ -> false
      in
      if dead then begin
        Store.set_elem store arr i Pvalue.Null;
        incr cleared
      end
    | _ -> ()
  done;
  let removed = ref 0 in
  List.iter
    (fun key ->
      if String.starts_with ~prefix:origin_prefix key then begin
        let dead =
          match Option.bind (Store.blob store key) int_of_string_opt with
          | None -> true
          | Some uid -> ( match hp_at vm uid with Pvalue.Ref _ -> false | _ -> true)
        in
        if dead then begin
          Store.remove_blob store key;
          incr removed
        end
      end)
    (Store.blob_keys store);
  { cleared_slots = !cleared; removed_origins = !removed }
