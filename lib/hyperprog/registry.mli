(** The hyper-program registry (paper Figure 7).

    A password-protected, persistent vector of {e weak} references to
    every hyper-program that has been translated for compilation.  The
    weak references implement the paper's JDK 1.2 plan: a registered
    hyper-program is still garbage collected once no user references
    remain, but while it lives, compiled textual forms can retrieve its
    hyper-linked entities through {!get_link}. *)

open Pstore
open Minijava

val root_name : string
(** The persistent root under which the registry lives. *)

val built_in_password : string
(** The password "built into the system" (paper Section 4.2). *)

val ensure : Rt.t -> Oid.t
(** Get or create the registry object. *)

val check_password : Rt.t -> string -> bool

val count : Rt.t -> int
(** Number of uids ever allocated (including collected programs). *)

val hp_at : Rt.t -> int -> Pvalue.t
(** The hyper-program at an index; [Null] if it has been collected. *)

val add_hp : Rt.t -> password:string -> Oid.t -> int
(** Register a hyper-program (idempotent); returns its unique id — its
    offset in the persistent vector, as in the paper.
    @raise Rt.Jerror [java.lang.SecurityException] on a bad password. *)

(** {1 Link retrieval}

    Broken hyper-links degrade instead of crashing: {!try_get_link}
    reports failure as data — the same {!Pstore.Failure.t} the store's
    salvage reads use — and {!get_link} hands quarantined targets back
    as [hyper.BrokenLink] instances. *)

val try_get_link :
  Rt.t -> password:string -> hp:int -> link:int -> (Pvalue.t, Failure.t) result
(** Like {!get_link}, but failures come back as data: [Collected] for a
    garbage-collected program, [Bad_index] for a link number the program
    does not have, [Quarantined]/[Dangling] for an unreadable link or
    target.
    @raise Rt.Jerror [java.lang.SecurityException] on a bad password. *)

val get_link : Rt.t -> password:string -> hp:int -> link:int -> Pvalue.t
(** Retrieve a [HyperLinkHP] instance (Figure 9's [getLink]).
    A quarantined or dangling target degrades to a [hyper.BrokenLink]
    instance carrying the reason ([Pvalue.Null] if that class is not
    loaded); the paper-specified exceptions are kept for the rest.
    @raise Rt.Jerror on bad password, collected program, or bad index. *)

val live_programs : Rt.t -> (int * Oid.t) list
(** Registered programs whose weak target is still alive. *)

(** {1 getLink memoisation}

    A bounded per-store memo of {!try_get_link} results keyed by
    [(hp, link)], on by default.  Registry mutations ({!add_hp},
    {!prune}) flush it; side channels — quarantine add/clear, GC sweeps,
    rollback, evolution's instance surgery — are caught by revalidating
    against [Store.invalidation_epoch] before every read, so broken-link
    degradation surfaces exactly as it would cold.  State lives in
    [Store.props]: per store, never persisted. *)

type memo_stats = {
  hits : int;
  misses : int;
  entries : int;
  capacity : int;
}

val memo_enabled : Rt.t -> bool
val set_memo_enabled : Rt.t -> bool -> unit
val memo_stats : Rt.t -> memo_stats

val clear_memo : Rt.t -> unit
(** Flush the memo (also called internally by {!add_hp} / {!prune}). *)

(** {1 Maintenance} *)

val origin_anchors : Rt.t -> (string * Oid.t) list
(** The [hyper.origin:*] blob anchors of live programs, for
    [Integrity.check ~anchors]. *)

type prune_stats = {
  cleared_slots : int;  (** weak slots nulled (uids stay stable) *)
  removed_origins : int;  (** [hyper.origin:*] blobs dropped *)
}

val prune : Rt.t -> prune_stats
(** Null out weak slots whose program was collected and drop origin
    blobs naming collected programs.  Quarantined programs are kept. *)
