(** HTML publishing of hyper-programs (paper Section 6).

    Hyper-programs are rendered as HTML pages with the hyper-links
    represented as URLs (a [store://] scheme carrying the target), as was
    done to publish the Napier88 compiler source. *)

open Minijava

val escape : string -> string
(** HTML-escape a text fragment. *)

val link_url : Hyperlink.t -> string
(** The URL a hyper-link is rendered as.  The components (class names,
    member names, printed values) are raw data; anchors escape the whole
    URL when embedding it, so hostile names cannot break out of the
    [href] attribute. *)

val export_form : Editing_form.t -> string
(** Render an editing-form hyper-program as a full HTML page. *)

val export : Rt.t -> Pstore.Oid.t -> string
(** Render a storage-form hyper-program as a full HTML page. *)

val index_page : (string * string) list -> string
(** An index page over (name, href) entries. *)

val export_all : Rt.t -> dir:string -> string list
(** Write one page per live registered hyper-program plus an index into
    [dir]; returns the exported names. *)

val plain_text : Rt.t -> Pstore.Oid.t -> string
(** Plain-text printing: links become bracketed footnote indices with
    their descriptions listed after the text. *)

(** {1 The live dashboard}

    The same publishing rendered on demand over the open store (served
    read-only by the hyper-programming server): hyper-links become URLs
    into the dashboard itself and every page carries a broken-link
    census computed with the registry's salvage reads.  All
    user-controlled text — class names, labels, program text, failure
    reasons — is escaped. *)

val live_index : Rt.t -> string
(** All live registered hyper-programs with per-program link and
    broken-link counts. *)

val live_page : Rt.t -> uid:int -> string option
(** One program's page, links pointing at [/hp/<uid>/link/<i>]; [None]
    if no live program has that uid. *)

val live_link_page : Rt.t -> uid:int -> link:int -> string
(** One link's resolution: its value, or the typed broken-link reason. *)
