(* The DynamicCompiler (Section 4.3, Figure 9): translation of
   hyper-programs to textual form, dynamic compilation, class loading,
   and execution.

   Two compilation mechanisms are provided, as in the paper:

   - [Direct]: the compiler is invoked directly, in-process.  Fast, but
     relies on knowledge of the implementation.
   - [Forked]: a fresh compiler universe is instantiated (the analog of
     forking an OS process running the JVM + javac): a new store is booted
     from scratch, the parent's class files are shipped over as the
     "classpath", sources are marshalled across, and the resulting class
     files are marshalled back.  Slow but implementation-independent.
   - [Auto] tries Direct and falls back to Forked, like Figure 9's
     try/catch around the direct invocation. *)

open Pstore
open Minijava

type mode =
  | Direct
  | Forked
  | Auto

(* For tests and benchmarks: force the direct path to fail, modelling the
   paper's "change in the Java implementation" scenario. *)
let direct_path_broken = ref false

(* -- install ----------------------------------------------------------------- *)

let hyper_classes_loaded vm = Rt.is_loaded vm Hyper_src.hyper_program_class

let str_desc = "Ljava.lang.String;"
let class_desc = "Ljava.lang.Class;"
let hp_desc = "Lhyper.HyperProgram;"
let hl_desc = "Lhyper.HyperLinkHP;"

let as_int = Vm.as_int

let rec install vm =
  if not (hyper_classes_loaded vm) then
    ignore (Jcompiler.compile_and_load vm Hyper_src.all_units);
  ignore (Registry.ensure vm);
  register_natives vm

and register_natives vm =
  let dc = Hyper_src.dynamic_compiler_class in
  let reg name desc fn = Rt.register_native vm ~cls:dc ~name ~desc fn in
  reg "getLink" ("(" ^ str_desc ^ "II)" ^ hl_desc) (fun vm args ->
      match args with
      | [ pw; hp; link ] ->
        Registry.get_link vm
          ~password:(Rt.ocaml_string vm pw)
          ~hp:(Int32.to_int (as_int hp))
          ~link:(Int32.to_int (as_int link))
      | _ -> Rt.jerror "java.lang.InternalError" "getLink: wrong arguments");
  reg "generateTextualForm" ("(" ^ hp_desc ^ ")" ^ str_desc) (fun vm args ->
      match args with
      | [ Pvalue.Ref hp_oid ] -> Rt.jstring vm (generate_textual_form vm hp_oid)
      | _ -> Rt.npe ());
  reg "compileClasses"
    ("([" ^ str_desc ^ "[" ^ str_desc ^ ")[" ^ class_desc)
    (fun vm args ->
      match args with
      | [ names; defns ] ->
        let strings v =
          match v with
          | Pvalue.Ref oid ->
            Array.to_list (Store.get_array Rt.(vm.store) oid).Pstore.Heap.elems
            |> List.map (Rt.ocaml_string vm)
          | _ -> Rt.npe ()
        in
        let rcs = compile_strings vm ~names:(strings names) (strings defns) in
        class_mirror_array vm rcs
      | _ -> Rt.jerror "java.lang.InternalError" "compileClasses: wrong arguments");
  reg "compileClass" ("(" ^ str_desc ^ str_desc ^ ")" ^ class_desc) (fun vm args ->
      match args with
      | [ name; defn ] ->
        let name = Rt.ocaml_string vm name in
        let rcs = compile_strings vm ~names:[ name ] [ Rt.ocaml_string vm defn ] in
        (match List.find_opt (fun rc -> String.equal rc.Rt.rc_name name) rcs with
        | Some rc -> Reflect.class_mirror vm rc.Rt.rc_name
        | None -> Rt.jerror "java.lang.NoClassDefFoundError" "%s" name)
      | _ -> Rt.jerror "java.lang.InternalError" "compileClass: wrong arguments");
  reg "compileClasses" ("([" ^ hp_desc ^ ")[" ^ class_desc) (fun vm args ->
      match args with
      | [ Pvalue.Ref arr ] ->
        let hps =
          Array.to_list (Store.get_array Rt.(vm.store) arr).Pstore.Heap.elems
          |> List.map (function
               | Pvalue.Ref oid -> oid
               | _ -> Rt.npe ())
        in
        class_mirror_array vm (compile_hyper_programs vm hps)
      | _ -> Rt.npe ());
  reg "compileClass" ("(" ^ hp_desc ^ ")[" ^ class_desc) (fun vm args ->
      match args with
      | [ Pvalue.Ref hp_oid ] -> class_mirror_array vm (compile_hyper_programs vm [ hp_oid ])
      | _ -> Rt.npe ())

and class_mirror_array vm rcs =
  let mirrors = List.map (fun rc -> Reflect.class_mirror vm rc.Rt.rc_name) rcs in
  Pvalue.Ref (Store.alloc_array Rt.(vm.store) class_desc (Array.of_list mirrors))

(* -- textual form -------------------------------------------------------------- *)

(* addHP then generate (Section 4.1: a reference to each hyper-program
   submitted for translation is recorded in the registry first). *)
and generate_textual_form vm hp_oid =
  ignore (Registry.add_hp vm ~password:Registry.built_in_password hp_oid);
  Textual_form.generate vm hp_oid

(* -- compilation ---------------------------------------------------------------- *)

(* Direct, in-process invocation of the compiler. *)
and compile_direct vm sources =
  if !direct_path_broken then
    failwith "direct compiler invocation unavailable (implementation changed)";
  Jcompiler.compile_and_load ~redefine:true vm sources

(* Simulated forked-process compilation: fresh universe + marshalling. *)
and compile_forked vm sources =
  (* "Write the sources down the pipe." *)
  let payload = Marshal.to_string (sources : string list) [] in
  (* "Fork a JVM running the compiler": boot a fresh universe. *)
  let child_store = Store.create () in
  let child = Boot.boot_fresh child_store in
  (* Ship the parent's class files across as the classpath. *)
  let classpath =
    List.filter_map
      (fun name ->
        if Rt.is_loaded child name then None
        else Option.map (fun rc -> rc.Rt.rc_classfile) (Rt.find_class vm name))
      vm.Rt.load_order
  in
  ignore (Linker.load_batch ~persist:false child classpath);
  (* Child compiles. *)
  let child_sources : string list = Marshal.from_string payload 0 in
  let cfs = Jcompiler.compile_units ~env:(Rt.class_env child) child_sources in
  (* "Read the class files back from the pipe." *)
  let back = Classfile.encode_batch cfs in
  let cfs = Classfile.decode_batch back in
  Linker.load_or_redefine_batch vm cfs

and compile_with_mode ?(mode = Auto) vm sources =
  let mode_label =
    match mode with
    | Direct -> "direct"
    | Forked -> "forked"
    | Auto -> "auto"
  in
  (* The compile cache sits outside the [Compile] span: a hit is a relink,
     not a compile, and is counted as [Cache_hit] instead. *)
  Compile_cache.cached vm sources ~compile:(fun () ->
      Obs.span (Store.obs Rt.(vm.store)) Obs.Compile ~label:mode_label (fun () ->
          match mode with
          | Direct -> compile_direct vm sources
          | Forked -> compile_forked vm sources
          | Auto -> begin
            (* Figure 9: try the direct invocation, ignore errors, fall back to
               forking.  Compile errors in the source itself are not caught —
               only failures of the invocation mechanism are. *)
            try compile_direct vm sources with
            | Failure _ -> compile_forked vm sources
          end))

(* Compile plain source strings.  [names] documents the expected class
   names (as in Figure 9's compileClasses(String[], String[])); mismatches
   are reported. *)
and compile_strings ?mode vm ~names sources =
  let rcs = compile_with_mode ?mode vm sources in
  List.iter
    (fun name ->
      if
        name <> ""
        && not (List.exists (fun rc -> String.equal rc.Rt.rc_name name) rcs)
      then
        Rt.jerror "java.lang.NoClassDefFoundError" "expected class %s was not defined" name)
    names;
  rcs

(* Compile hyper-programs (Figure 9's compileClasses(HyperProgram[])).
   Each resulting class also records which hyper-program it came from
   (the hyper-code association of Section 6: the programmer can always
   get back from an executable class to its hyper-program). *)
and compile_hyper_programs ?mode vm hp_oids =
  let sources = List.map (fun hp_oid -> generate_textual_form vm hp_oid) hp_oids in
  let rcs = compile_with_mode ?mode vm sources in
  List.iter2
    (fun hp_oid source ->
      let uid = Storage_form.uid vm hp_oid in
      List.iter
        (fun rc ->
          if rc.Rt.rc_classfile.Classfile.cf_source = Some source then
            Store.set_blob vm.Rt.store
              ("hyper.origin:" ^ rc.Rt.rc_name)
              (string_of_int uid))
        rcs)
    hp_oids sources;
  rcs

let compile_hyper_program ?mode vm hp_oid = compile_hyper_programs ?mode vm [ hp_oid ]

(* -- the hyper-code association (Section 6) --------------------------------

   "The hyper-code abstraction allows a single program representation
   form, the hyper-program, to be presented to the programmer at all
   stages of the software development process."  Given any class compiled
   from a hyper-program, recover that hyper-program. *)

let origin_uid_of_class vm cls =
  match Store.blob vm.Rt.store ("hyper.origin:" ^ cls) with
  | Some s -> int_of_string_opt s
  | None -> None

let hyper_program_of_class vm cls =
  match origin_uid_of_class vm cls with
  | None -> None
  | Some uid -> begin
    match Registry.hp_at vm uid with
    | Pvalue.Ref hp_oid -> Some hp_oid
    | _ -> None (* the hyper-program has been garbage collected *)
  end

(* -- execution -------------------------------------------------------------------- *)

(* Run the principal class's main method (Section 5.4.2's Go button). *)
let run_main vm ~cls argv = Vm.run_main vm ~cls argv

(* Compile a hyper-program and run its principal class. *)
let go ?mode vm hp_oid ~argv =
  let rcs = compile_hyper_programs ?mode vm [ hp_oid ] in
  let principal =
    let declared = Storage_form.class_name vm hp_oid in
    if declared <> "" && List.exists (fun rc -> String.equal rc.Rt.rc_name declared) rcs then
      declared
    else
      match rcs with
      | rc :: _ -> rc.Rt.rc_name
      | [] -> Rt.jerror "java.lang.NoClassDefFoundError" "hyper-program defined no classes"
  in
  run_main vm ~cls:principal argv;
  principal

(* -- error reporting in hyper-program terms -----------------------------------
   The paper: "In the current version the error is described in terms of
   the translated textual form... In a future version, we plan to display
   error messages in terms of the original hyper-program."  Implemented
   here via the textual form's source map. *)

let explain_error vm hp_oid (e : Jcompiler.error) =
  match Textual_form.generate_mapped vm hp_oid with
  | textual, map ->
    let explained = Textual_form.explain vm hp_oid map ~textual ~pos:e.Jcompiler.pos in
    Format.asprintf "%s %a" e.Jcompiler.message Textual_form.pp_explained explained
  | exception _ -> Format.asprintf "%a" Jcompiler.pp_error e
