(** The textual form (paper Section 4, Figure 8).

    Each hyper-link is replaced by an equivalent textual denotation so a
    standard compiler can compile the hyper-program: store-object links
    become retrieval expressions through the password-protected registry;
    methods, fields, types and primitive values become plain source text.

    The source-map half of this module implements the paper's planned
    improvement of reporting compile errors "in terms of the original
    hyper-program". *)

open Pstore
open Minijava

exception Textual_error of string

val literal_source : Pvalue.t -> string
(** Java literal text for a primitive value.
    @raise Textual_error on references. *)

val broken_placeholder : link_index:int -> string -> string
(** The expression spliced in for a link whose target cannot be read:
    [((java.lang.Object) null /* broken hyper-link N: reason */)]. *)

val link_expression :
  Rt.t -> password:string -> hp_uid:int -> link_index:int -> Hyperlink.t -> string
(** The textual equivalent of one hyper-link (paper Section 4.2).  When
    the link's target store object is quarantined or dangling this is
    {!broken_placeholder} instead. *)

val generate : Rt.t -> Oid.t -> string
(** Generate the whole textual form of a registered hyper-program.
    Damage degrades instead of raising: links whose target entity cannot
    be read splice in {!broken_placeholder}, and links whose own
    [HyperLinkHP] instance cannot be read are reported in a leading
    comment (and skipped).
    @raise Textual_error if the program has no uid (register it with
    {!Registry.add_hp} first, or use
    {!Dynamic_compiler.generate_textual_form}). *)

(** {1 Source maps} *)

type origin =
  | From_text of int  (** offset in the storage-form text *)
  | From_link of int  (** index of the covering hyper-link *)
  | From_header  (** the generated import line *)

type source_map

val map_offset : source_map -> int -> origin
(** Attribute a textual-form offset to its origin. *)

val offset_of_pos : string -> Lexer.pos -> int
val pos_of_offset : string -> int -> Lexer.pos

val generate_mapped : Rt.t -> Oid.t -> string * source_map
(** As {!generate}, but also return the source map. *)

type explained =
  | In_text of Lexer.pos  (** a position within the hyper-program's text *)
  | In_link of int * string  (** hyper-link index and label *)
  | In_generated

val explain : Rt.t -> Oid.t -> source_map -> textual:string -> pos:Lexer.pos -> explained
(** Explain a textual-form position in hyper-program terms. *)

val pp_explained : Format.formatter -> explained -> unit
