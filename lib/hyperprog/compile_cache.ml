(* The persistent compiled-class cache.

   Dynamic compilation is the hottest expensive path in the system: every
   Go-button press, every evolve, every linguistic-reflection call ends in
   [Jcompiler.compile_units].  But hyper-program sources are highly
   repetitive — the same textual form is regenerated and recompiled again
   and again across sessions.  This cache keys the *result* of a compile
   (the encoded class-file batch) by a content hash of the source unit
   plus a fingerprint of the class environment it was compiled against,
   and stores it as an ordinary store blob, so it survives stabilise and
   reopen like everything else in the orthogonally persistent world.

   Correctness rests on the key, not on explicit invalidation:

   - the key covers every source string (order and content);
   - the key covers the class files of every loaded class the sources
     could see — EXCLUDING the classes the sources themselves define,
     since those are outputs of the compile, not inputs (including them
     would make every second compile a spurious miss after the first
     redefinition);
   - any change to a visible class (schema evolution, redefinition)
     changes its encoded class file, hence the fingerprint, hence the key.

   [Evolution] additionally calls {!purge} after a successful evolve —
   belt and braces, and it keeps dead generations from accumulating.

   Anything unexpected during key computation (unparsable source, decode
   failure on a cached blob) falls back to the real compiler, so the
   cached system is observably identical to a cold one — the property the
   differential suite in [test/cache] locks in. *)

open Pstore
open Minijava

let blob_prefix = "hyper.ccache:"
let index_blob = "hyper.ccache.index"
let default_capacity = 32

type stats = {
  hits : int;
  misses : int;
  entries : int;
  capacity : int;
}

type state = {
  mutable enabled : bool;
  mutable hits : int;
  mutable misses : int;
  mutable lru : string list; (* resident keys (hex), most recent first *)
  (* class-file digest memo: name -> (classfile as last seen, digest).
     Checked by physical equality, so a redefinition (new classfile
     record) forces a re-hash while steady-state lookups cost nothing. *)
  digests : (string, Classfile.t * string) Hashtbl.t;
  (* defined-class-names memo: source text -> names.  Extracting the
     names means parsing the source; repeated sources are the whole
     point of this cache, so steady-state hits must not re-parse. *)
  names : (string, string list) Hashtbl.t;
  capacity : int;
}

let state_key : state Props.key = Props.new_key ()

(* The resident-key index is persisted so a reopened store knows which
   ccache blobs it holds (recency is rebuilt as the cache is used). *)
let load_index store =
  match Store.blob store index_blob with
  | None -> []
  | Some s ->
    String.split_on_char '\n' s
    |> List.filter (fun k -> Store.blob store (blob_prefix ^ k) <> None)

let state_of vm =
  let store = vm.Rt.store in
  Props.get_or_create (Store.props store) state_key (fun () ->
      {
        enabled = true;
        hits = 0;
        misses = 0;
        lru = load_index store;
        digests = Hashtbl.create 64;
        names = Hashtbl.create 16;
        capacity = default_capacity;
      })

let enabled vm = (state_of vm).enabled
let set_enabled vm flag = (state_of vm).enabled <- flag

let stats vm =
  let s = state_of vm in
  { hits = s.hits; misses = s.misses; entries = List.length s.lru; capacity = s.capacity }

(* -- the cache key -------------------------------------------------------- *)

let classfile_digest s name (cf : Classfile.t) =
  match Hashtbl.find_opt s.digests name with
  | Some (seen, d) when seen == cf -> d
  | _ ->
    let d = Digest.string (Classfile.encode cf) in
    Hashtbl.replace s.digests name (cf, d);
    d

(* Hash of sources + visible class environment.  May raise (e.g. the
   source does not even parse); the caller falls back to a real compile,
   which reports the error exactly as a cold system would. *)
let names_of_source s src =
  match Hashtbl.find_opt s.names src with
  | Some ns -> ns
  | None ->
    let ns = Jcompiler.class_names_of_source src in
    if Hashtbl.length s.names >= 256 then Hashtbl.reset s.names;
    Hashtbl.add s.names src ns;
    ns

let key_of s vm sources =
  let defined = List.concat_map (names_of_source s) sources in
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      if not (List.mem name defined) then
        match Rt.find_class vm name with
        | Some rc ->
          Buffer.add_string buf name;
          Buffer.add_char buf '\000';
          Buffer.add_string buf (classfile_digest s name rc.Rt.rc_classfile)
        | None -> ())
    vm.Rt.load_order;
  List.iter
    (fun src ->
      Buffer.add_string buf (string_of_int (String.length src));
      Buffer.add_char buf ':';
      Buffer.add_string buf src)
    sources;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* -- residency ------------------------------------------------------------ *)

let save_index store s =
  Store.set_blob store index_blob (String.concat "\n" s.lru)

let touch s key = s.lru <- key :: List.filter (fun k -> k <> key) s.lru

let insert store s key data =
  Store.set_blob store (blob_prefix ^ key) data;
  touch s key;
  (* keep the [capacity] most recent; evicted entries lose their blobs *)
  let rec split n = function
    | [] -> ([], [])
    | l when n = 0 -> ([], l)
    | k :: rest ->
      let keep, drop = split (n - 1) rest in
      (k :: keep, drop)
  in
  let keep, drop = split s.capacity s.lru in
  List.iter (fun k -> Store.remove_blob store (blob_prefix ^ k)) drop;
  s.lru <- keep;
  save_index store s

let forget store s key =
  Store.remove_blob store (blob_prefix ^ key);
  s.lru <- List.filter (fun k -> k <> key) s.lru;
  save_index store s

let purge vm =
  let store = vm.Rt.store in
  let s = state_of vm in
  List.iter
    (fun k -> if String.length k >= String.length blob_prefix
              && String.sub k 0 (String.length blob_prefix) = blob_prefix
              then Store.remove_blob store k)
    (Store.blob_keys store);
  Store.remove_blob store index_blob;
  s.lru <- [];
  Hashtbl.reset s.digests

(* -- the cached compile --------------------------------------------------- *)

let cached vm sources ~compile =
  let s = state_of vm in
  if not s.enabled then compile ()
  else begin
    let store = vm.Rt.store in
    let obs = Store.obs store in
    match key_of s vm sources with
    | exception _ -> compile () (* unhashable input: report errors cold *)
    | key -> begin
      match Store.blob store (blob_prefix ^ key) with
      | Some data -> begin
        match Classfile.decode_batch data with
        | cfs ->
          s.hits <- s.hits + 1;
          Obs.incr obs Obs.Cache_hit;
          touch s key;
          Linker.load_or_redefine_batch vm cfs
        | exception _ ->
          (* a corrupt entry is just a miss; drop it and recompile *)
          forget store s key;
          s.misses <- s.misses + 1;
          Obs.incr obs Obs.Cache_miss;
          let rcs = compile () in
          insert store s key
            (Classfile.encode_batch (List.map (fun rc -> rc.Rt.rc_classfile) rcs));
          rcs
      end
      | None ->
        s.misses <- s.misses + 1;
        Obs.incr obs Obs.Cache_miss;
        let rcs = compile () in
        insert store s key
          (Classfile.encode_batch (List.map (fun rc -> rc.Rt.rc_classfile) rcs));
        rcs
    end
  end
