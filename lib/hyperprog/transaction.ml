(* Transactions over the live system (paper Section 7): "in a
   transactional system it is possible to do this [evolution] in a
   separate transaction while the system is live".

   A transaction runs its body against a FRESH VM over the shared store
   (the transaction's private execution state, as in PJama's transaction
   shells).  On success the store keeps the transaction's effects and the
   transaction's VM becomes the current one; on abort the store is
   restored to its pre-transaction image and a fresh VM is booted from
   the restored state, so classes, data and hyper-programs all revert
   together.

   The commit/abort machinery itself lives in the store layer: this
   module wraps [Store.Session.atomically] (whole-store rollback plus
   the journalled commit barrier — the single-owner transaction on the
   default session) and adds the VM lifecycle on top. *)

open Pstore
open Minijava

type 'a outcome =
  | Committed of 'a * Rt.t
  | Aborted of exn * Rt.t

(* Boot a VM for the store's current state, replacing any pins from
   previous VMs (their execution state is gone). *)
let fresh_vm store =
  Store.clear_pins store;
  let vm = Boot.vm_for store in
  Dynamic_compiler.install vm;
  vm

let transact store (body : Rt.t -> 'a) : 'a outcome =
  Obs.span (Store.obs store) Obs.Transaction (fun () ->
      match
        Store.Session.atomically store (fun () ->
            let vm = fresh_vm store in
            let value = body vm in
            (value, vm))
      with
      | Ok (value, vm) -> Committed (value, vm)
      | Error e ->
        (* The store is back to its pre-transaction image; discard the
           transaction's VM and boot one over the restored state. *)
        Aborted (e, fresh_vm store))

(* Schema evolution inside a transaction: the paper's live-evolution
   scenario.  If recompilation or the converter fails, every store
   effect — the new class file, the archived version, the reconstructed
   instances — is rolled back. *)
let evolve ?converter ?mode store ~class_name ~new_source () =
  transact store (fun vm ->
      Evolution.evolve ?converter ?mode vm ~class_name ~new_source ())
