(* MiniJava sources of the hyper-programming runtime classes: the storage
   form (Figures 4 and 6) and the DynamicCompiler interface (Figure 9).
   They are compiled into any store that uses hyper-programming, so
   hyper-program instances are ordinary persistent objects that generated
   textual forms can reach through DynamicCompiler.getLink. *)

let hyper_unit =
  {|package hyper;
import java.util.Vector;

public class HyperProgram {
  protected String theText;
  protected Vector theLinks;
  protected String className;
  protected int uid;

  public HyperProgram() {
    theText = "";
    theLinks = new Vector();
    className = "";
    uid = -1;
  }

  public HyperProgram(String text) {
    theText = text;
    theLinks = new Vector();
    className = "";
    uid = -1;
  }

  public HyperProgram(String text, Vector links) {
    theText = text;
    theLinks = links;
    className = "";
    uid = -1;
  }

  public String getTheText() { return theText; }
  public Vector getTheLinks() { return theLinks; }
  public String getClassName() { return className; }
  public void setClassName(String name) { className = name; }
  public int getUid() { return uid; }
  public void setUid(int u) { uid = u; }
  public void setTheText(String text) { theText = text; }

  public String toString() {
    return "HyperProgram(" + className + ", " + theLinks.size() + " links)";
  }
}

public class HyperLinkHP {
  protected Object hyperLinkObject;
  protected String label;
  protected int stringPos;
  protected boolean isSpecial;
  protected boolean isPrimitive;
  protected int kindTag;
  protected String className;
  protected String memberName;
  protected String descriptor;
  protected int index;

  public HyperLinkHP() {}

  public HyperLinkHP(Object obj, String lbl, int pos, boolean special, boolean primitive) {
    hyperLinkObject = obj;
    label = lbl;
    stringPos = pos;
    isSpecial = special;
    isPrimitive = primitive;
  }

  public Object getObject() { return hyperLinkObject; }
  public String getLabel() { return label; }
  public int getStringPos() { return stringPos; }
  public boolean getIsSpecial() { return isSpecial; }
  public boolean getIsPrimitive() { return isPrimitive; }
  public int getKindTag() { return kindTag; }
  public String getLinkClassName() { return className; }
  public String getMemberName() { return memberName; }
  public String getDescriptor() { return descriptor; }
  public int getIndex() { return index; }

  public String toString() { return "HyperLinkHP(" + label + ")"; }
}

public class BrokenLink extends HyperLinkHP {
  protected String reason;

  public BrokenLink() { reason = ""; }

  public String getReason() { return reason; }
  public boolean isBroken() { return true; }

  public String toString() { return "BrokenLink(" + label + ": " + reason + ")"; }
}

public class Registry {
  protected String password;
  protected Object[] programs;
  protected int count;
}
|}

let compiler_unit =
  {|package compiler;
import hyper.HyperProgram;
import hyper.HyperLinkHP;

public class DynamicCompiler {
  public static native HyperLinkHP getLink(String password, int hpIndex, int hlIndex);
  public static native Class[] compileClasses(String[] classNames, String[] classDefns);
  public static native Class compileClass(String className, String classDefn);
  public static native Class[] compileClasses(HyperProgram[] hps);
  public static native Class[] compileClass(HyperProgram hp);
  public static native String generateTextualForm(HyperProgram hp);
}
|}

let all_units = [ hyper_unit; compiler_unit ]

let hyper_program_class = "hyper.HyperProgram"
let hyper_link_class = "hyper.HyperLinkHP"
let broken_link_class = "hyper.BrokenLink"
let registry_class = "hyper.Registry"
let dynamic_compiler_class = "compiler.DynamicCompiler"
