(* The textual form (Section 4.1, Figure 8): each hyper-link is replaced
   by an equivalent textual denotation so any standard compiler can
   compile the program.  Links to store objects become retrieval
   expressions through the password-protected registry; links to methods,
   fields, types and primitive values become plain source text. *)

open Pstore
open Minijava

exception Textual_error of string

let textual_error fmt = Format.kasprintf (fun s -> raise (Textual_error s)) fmt

(* Java source syntax for a type (casts in retrieval expressions). *)
let type_source ty = Jtype.to_string ty

(* The source form of the runtime class of a store object, for casts. *)
let cast_type vm oid =
  match Store.get Rt.(vm.store) oid with
  | Pstore.Heap.Record r -> r.Pstore.Heap.class_name
  | Pstore.Heap.Str _ -> Jtype.string_class
  | Pstore.Heap.Array a -> type_source (Jtype.of_descriptor a.Pstore.Heap.elem_type) ^ "[]"
  | Pstore.Heap.Weak _ -> textual_error "cannot hyper-link a weak cell"

(* Java literal text for a primitive value. *)
let literal_source v =
  match v with
  | Pvalue.Bool b -> if b then "true" else "false"
  | Pvalue.Byte n -> Printf.sprintf "(byte) %d" n
  | Pvalue.Short n -> Printf.sprintf "(short) %d" n
  | Pvalue.Char c ->
    if c >= 32 && c < 127 && c <> Char.code '\'' && c <> Char.code '\\' then
      Printf.sprintf "'%c'" (Char.chr c)
    else Printf.sprintf "'\\u%04x'" c
  | Pvalue.Int n -> Int32.to_string n
  | Pvalue.Long n -> Int64.to_string n ^ "L"
  | Pvalue.Float f -> Printf.sprintf "%.17gf" f
  | Pvalue.Double f -> Printf.sprintf "%.17g" f
  | Pvalue.Null -> "null"
  | Pvalue.Ref _ -> textual_error "reference is not a primitive value"

let get_link_call ~password ~hp_uid ~link_index =
  Printf.sprintf "DynamicCompiler.getLink(\"%s\", %d, %d)" password hp_uid link_index

(* The store object a link dereferences at run time, if any. *)
let target_oid_of = function
  | Hyperlink.L_object oid -> Some oid
  | Hyperlink.L_instance_field { target; _ } -> Some target
  | Hyperlink.L_array_element { array; _ } -> Some array
  | Hyperlink.L_primitive _ | Hyperlink.L_type _ | Hyperlink.L_static_method _
  | Hyperlink.L_instance_method _ | Hyperlink.L_constructor _ | Hyperlink.L_static_field _ ->
    None

(* [Some reason] if the oid cannot be read (quarantined or dangling). *)
let target_damage vm oid =
  match Store.try_get Rt.(vm.store) oid with
  | Ok _ -> None
  | Error (Failure.Quarantined { reason; _ }) -> Some reason
  | Error e -> Some (Failure.describe e)

(* Keep damage reasons from closing the generated comment early: without
   a '/' no "*/" can appear. *)
let comment_safe reason = String.map (fun c -> if c = '/' then '.' else c) reason

(* The placeholder spliced in for a link whose target cannot be read:
   still parses as an expression, and carries the diagnosis where the
   programmer will look.  The cast keeps it a reference-typed value. *)
let broken_placeholder ~link_index reason =
  Printf.sprintf "((java.lang.Object) null /* broken hyper-link %d: %s */)" link_index
    (comment_safe reason)

(* The textual equivalent of one hyper-link (Section 4.2).  Links whose
   target store object is quarantined or dangling degrade to
   {!broken_placeholder} instead of raising. *)
let link_expression vm ~password ~hp_uid ~link_index (link : Hyperlink.t) =
  let retrieval = get_link_call ~password ~hp_uid ~link_index in
  match target_oid_of link with
  | Some oid when target_damage vm oid <> None ->
    let reason = Option.get (target_damage vm oid) in
    broken_placeholder ~link_index reason
  | _ -> begin
    match link with
    | Hyperlink.L_static_method { cls; name; _ } ->
      (* "fully qualified method name" — no store retrieval needed *)
      Printf.sprintf "%s.%s" cls name
    | Hyperlink.L_instance_method { name; _ } ->
      (* spliced after a receiver expression and dot in the program text *)
      name
    | Hyperlink.L_constructor { cls; _ } -> cls
    | Hyperlink.L_type ty -> type_source ty
    | Hyperlink.L_primitive v -> literal_source v
    | Hyperlink.L_object oid ->
      Printf.sprintf "((%s) %s.getObject())" (cast_type vm oid) retrieval
    | Hyperlink.L_static_field { cls; name } -> Printf.sprintf "%s.%s" cls name
    | Hyperlink.L_instance_field { target; cls = _; name } ->
      Printf.sprintf "((%s) %s.getObject()).%s" (cast_type vm target) retrieval name
    | Hyperlink.L_array_element { array; index } ->
      Printf.sprintf "((%s) %s.getObject())[%d]" (cast_type vm array) retrieval index
  end

(* Does this link kind need the registry at run time? *)
let needs_retrieval = function
  | Hyperlink.L_object _ | Hyperlink.L_instance_field _ | Hyperlink.L_array_element _ -> true
  | Hyperlink.L_primitive _ | Hyperlink.L_type _ | Hyperlink.L_static_method _
  | Hyperlink.L_instance_method _ | Hyperlink.L_constructor _ | Hyperlink.L_static_field _ ->
    false

(* Splice expansion strings into the storage-form text at their
   positions.  Positions index the text *without* the links. *)
let splice text (expansions : (int * string) list) =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) expansions in
  let buf = Buffer.create (String.length text + 64) in
  let len = String.length text in
  let rec go cursor = function
    | [] -> Buffer.add_substring buf text cursor (len - cursor)
    | (pos, expansion) :: rest ->
      if pos < cursor || pos > len then textual_error "link position %d out of range" pos;
      Buffer.add_substring buf text cursor (pos - cursor);
      Buffer.add_string buf expansion;
      go pos rest
  in
  go 0 sorted;
  Buffer.contents buf

(* Insert the DynamicCompiler import after any package declaration. *)
let add_import text =
  let import_line = "import compiler.DynamicCompiler;\n" in
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest
    when String.length (String.trim first) >= 7
         && String.sub (String.trim first) 0 7 = "package" ->
    String.concat "\n" ((first ^ "\n" ^ String.trim import_line) :: rest)
  | _ -> import_line ^ text

(* Read link specs one at a time: a quarantined or dangling HyperLinkHP
   instance is reported as data instead of killing the whole translation,
   and surviving links keep their original indices (their getLink
   numbering). *)
let readable_links vm hp_oid =
  Storage_form.link_oids vm hp_oid
  |> List.mapi (fun i oid ->
         match Storage_form.read_link vm oid with
         | spec -> (i, Ok spec)
         | exception Quarantine.Quarantined (_, reason) -> (i, Error reason)
         | exception Pstore.Heap.Heap_error _ -> (i, Error "dangling reference"))

let ok_specs links = List.filter_map (fun (_, r) -> Result.to_option r) links

(* Generate the textual form of a registered hyper-program (its uid must
   have been allocated by Registry.add_hp).  Links whose HyperLinkHP
   instance cannot be read are reported in a header comment; links whose
   target entity cannot be read splice in {!broken_placeholder}. *)
let generate vm hp_oid =
  let hp_uid = Storage_form.uid vm hp_oid in
  if hp_uid < 0 then
    textual_error "hyper-program is not registered; call Registry.add_hp first";
  let text = Storage_form.text vm hp_oid in
  let links = readable_links vm hp_oid in
  let expansions =
    List.filter_map
      (fun (link_index, r) ->
        match r with
        | Ok (spec : Storage_form.link_spec) ->
          Some
            ( spec.Storage_form.pos,
              link_expression vm ~password:Registry.built_in_password ~hp_uid ~link_index
                spec.Storage_form.link )
        | Error _ -> None)
      links
  in
  let body = splice text expansions in
  let body =
    if List.exists (fun spec -> needs_retrieval spec.Storage_form.link) (ok_specs links)
    then add_import body
    else body
  in
  let unreadable =
    List.filter_map
      (fun (i, r) -> match r with Error reason -> Some (i, reason) | Ok _ -> None)
      links
  in
  match unreadable with
  | [] -> body
  | _ ->
    String.concat ""
      (List.map
         (fun (i, reason) ->
           Printf.sprintf "/* unreadable hyper-link %d: %s */\n" i (comment_safe reason))
         unreadable)
    ^ body

(* ---------------------------------------------------------------------- *)
(* Source maps: textual form -> hyper-program positions                    *)
(*                                                                         *)
(* The paper reports compile errors "in terms of the translated textual   *)
(* form, which may not be comprehensible to the programmer" and plans to  *)
(* display them in terms of the original hyper-program.  The source map   *)
(* implements that plan: every character of the generated textual form is *)
(* attributed either to a position in the original storage-form text, to  *)
(* one of the hyper-links, or to the generated import header.             *)
(* ---------------------------------------------------------------------- *)

type origin =
  | From_text of int (* offset in the storage-form text *)
  | From_link of int (* index of the hyper-link whose expansion covers it *)
  | From_header (* the generated import line *)

type source_map = {
  (* (start offset in textual form, length, origin at segment start);
     sorted by start offset, contiguous. *)
  segments : (int * int * origin) list;
}

(* Attribute a textual-form offset to its origin. *)
let map_offset map offset =
  let rec go = function
    | [] -> From_header
    | (start, len, origin) :: rest ->
      if offset >= start && offset < start + len then begin
        match origin with
        | From_text base -> From_text (base + (offset - start))
        | other -> other
      end
      else go rest
  in
  go map.segments

(* Line/column <-> offset conversions over a text. *)
let offset_of_pos text (pos : Lexer.pos) =
  let rec find_line offset line =
    if line >= pos.Lexer.line then offset
    else
      match String.index_from_opt text offset '\n' with
      | Some nl -> find_line (nl + 1) (line + 1)
      | None -> String.length text
  in
  let bol = find_line 0 1 in
  min (String.length text) (bol + pos.Lexer.col - 1)

let pos_of_offset text offset =
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < offset && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    text;
  { Lexer.line = !line; col = offset - !bol + 1 }

(* As [splice], but also produce the source map. *)
let splice_mapped text (expansions : (int * string) list) =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) expansions in
  let buf = Buffer.create (String.length text + 64) in
  let segments = ref [] in
  let len = String.length text in
  let emit_text orig_start n =
    if n > 0 then begin
      segments := (Buffer.length buf, n, From_text orig_start) :: !segments;
      Buffer.add_substring buf text orig_start n
    end
  in
  let rec go cursor idx = function
    | [] -> emit_text cursor (len - cursor)
    | (pos, expansion) :: rest ->
      if pos < cursor || pos > len then textual_error "link position %d out of range" pos;
      emit_text cursor (pos - cursor);
      segments := (Buffer.length buf, String.length expansion, From_link idx) :: !segments;
      Buffer.add_string buf expansion;
      go pos (idx + 1) rest
  in
  go 0 0 sorted;
  (Buffer.contents buf, { segments = List.rev !segments })

let shift_map map by =
  { segments = List.map (fun (s, l, o) -> (s + by, l, o)) map.segments }

(* Generate the textual form together with its source map. *)
let generate_mapped vm hp_oid =
  let hp_uid = Storage_form.uid vm hp_oid in
  if hp_uid < 0 then
    textual_error "hyper-program is not registered; call Registry.add_hp first";
  let text = Storage_form.text vm hp_oid in
  (* Unreadable links are silently skipped here: the source map must stay
     an exact account of the spliced text.  [generate] reports them.
     Surviving links keep their original getLink indices. *)
  let readable =
    List.filter_map
      (fun (i, r) -> match r with Ok spec -> Some (i, spec) | Error _ -> None)
      (readable_links vm hp_oid)
  in
  let links = List.map snd readable in
  let expansions =
    List.map
      (fun (link_index, (spec : Storage_form.link_spec)) ->
        ( spec.Storage_form.pos,
          link_expression vm ~password:Registry.built_in_password ~hp_uid ~link_index
            spec.Storage_form.link ))
      readable
  in
  let body, map = splice_mapped text expansions in
  if List.exists (fun spec -> needs_retrieval spec.Storage_form.link) links then begin
    let with_import = add_import body in
    (* add_import inserts a prefix (and possibly keeps a package line
       first); the inserted length is the size difference, always at a
       single point: after the package line or at offset 0. *)
    let inserted = String.length with_import - String.length body in
    let insertion_point =
      (* find where the texts diverge *)
      let rec go i =
        if i >= String.length body then i
        else if body.[i] = with_import.[i] then go (i + 1)
        else i
      in
      go 0
    in
    let map =
      {
        segments =
          List.map
            (fun (s, l, o) -> if s >= insertion_point then (s + inserted, l, o) else (s, l, o))
            map.segments;
      }
    in
    ignore shift_map;
    (with_import, map)
  end
  else (body, map)

(* Explain a position in the textual form in hyper-program terms. *)
type explained =
  | In_text of Lexer.pos (* position within the hyper-program's own text *)
  | In_link of int * string (* hyper-link index and label *)
  | In_generated (* generated header *)

let explain vm hp_oid map ~textual ~(pos : Lexer.pos) =
  let offset = offset_of_pos textual pos in
  match map_offset map offset with
  | From_text orig ->
    let text = Storage_form.text vm hp_oid in
    In_text (pos_of_offset text orig)
  | From_link idx ->
    let links = Storage_form.links vm hp_oid in
    let label =
      match List.nth_opt links idx with
      | Some spec -> spec.Storage_form.label
      | None -> string_of_int idx
    in
    In_link (idx, label)
  | From_header -> In_generated

let pp_explained ppf = function
  | In_text pos -> Format.fprintf ppf "at %a in the hyper-program" Lexer.pp_pos pos
  | In_link (idx, label) -> Format.fprintf ppf "in hyper-link %d [%s]" idx label
  | In_generated -> Format.pp_print_string ppf "in generated code"
