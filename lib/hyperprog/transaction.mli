(** Transactions over the live system (paper Section 7).

    A transaction runs its body against a fresh VM over the shared store.
    On success the store keeps the effects and the transaction's VM
    becomes the current one; on abort the store is restored to its
    pre-transaction image — classes, data and hyper-programs revert
    together — and a fresh VM is booted from the restored state.

    There is exactly one commit/abort notion in the system, and it lives
    in the store layer: {!transact} is [Store.Session.atomically]
    (whole-store rollback, then the journalled commit barrier on
    success) plus the VM lifecycle.  The snapshot-isolated multi-client
    variant is [Store.open_session] / [Store.Session.commit]; this
    module is the single-owner form on the default session, and — like
    every default-session write — it refuses to run while snapshot
    sessions are open. *)

open Pstore
open Minijava

type 'a outcome =
  | Committed of 'a * Rt.t  (** the result and the VM to continue with *)
  | Aborted of exn * Rt.t  (** the failure and a VM over the restored store *)

val fresh_vm : Store.t -> Rt.t
(** Boot a VM for the store's current state, replacing earlier VMs' pins
    and installing the hyper-programming runtime. *)

val transact : Store.t -> (Rt.t -> 'a) -> 'a outcome
(** Run the body atomically ([Store.Session.atomically]): on a
    journalled, backed store a successful transaction ends with the
    commit barrier — the delta is fsynced to the write-ahead journal, so
    commits survive a crash without a full snapshot.  An abort truncates
    the journal to its pre-transaction savepoint.
    @raise Invalid_argument (from the store) while snapshot sessions are
    open. *)

val evolve :
  ?converter:string ->
  ?mode:Dynamic_compiler.mode ->
  Store.t ->
  class_name:string ->
  new_source:string ->
  unit ->
  Evolution.result outcome
(** The paper's live-evolution scenario: schema evolution in a separate
    transaction; a failing recompilation or converter rolls back every
    store effect. *)
