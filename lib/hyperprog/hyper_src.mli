(** MiniJava sources of the hyper-programming runtime classes: the storage
    form (paper Figures 4 and 6) and the DynamicCompiler class interface
    (Figure 9).  Compiled into every store that uses hyper-programming by
    {!Dynamic_compiler.install}. *)

val hyper_unit : string
(** Package [hyper]: [HyperProgram], [HyperLinkHP], [BrokenLink],
    [Registry]. *)

val compiler_unit : string
(** Package [compiler]: [DynamicCompiler] with its native methods. *)

val all_units : string list

val hyper_program_class : string
val hyper_link_class : string

val broken_link_class : string
(** [hyper.BrokenLink]: the degraded stand-in {!Registry.try_get_link}
    returns for links whose target is quarantined. *)

val registry_class : string
val dynamic_compiler_class : string
