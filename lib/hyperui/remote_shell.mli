(** The [hpjava connect] client shell: a line-oriented (interactive and
    pipe-scriptable) front-end over the wire protocol.

    Builds hyper-source in a local buffer, sends it as an edit buffered
    in the connection's server-side session, and surfaces commit races
    as the typed conflict line — [retry] re-sends the last edit under
    the fresh snapshot the server has already opened. *)

val run : client:Server.Client.t -> input:in_channel -> unit
(** Drive the connected client from [input] until [quit]/EOF.  Exits
    with code 1 (one-line stderr) if the server hangs up or breaks
    framing mid-session. *)
