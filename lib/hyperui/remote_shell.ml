(* The `hpjava connect` client shell: a line-oriented (interactive and
   pipe-scriptable) front-end over the wire protocol.

   The local state is one edit buffer (`edit ROOT` + `type TEXT` build
   it, `save` sends it) and the last saved edit, kept so a lost commit
   race is retried with one command: the server answers Commit with a
   typed conflict frame and has already opened a fresh-snapshot session,
   so `retry` just re-sends the same edit and commits again. *)

module Client = Server.Client
module Protocol = Server.Protocol

let help_text =
  {|commands:
  roots | census | programs      browse the served store (snapshot view)
  root NAME                      show one root
  get-link HP LINK               resolve a registered hyper-link
  edit ROOT                      start an edit buffer bound to root ROOT
  type TEXT                      append TEXT and a newline (\n escapes expand too)
  save                           send the buffered edit (kept for retry)
  commit                         publish this session's buffered edits (first committer wins)
  retry                          after a conflict: re-send the last edit and commit again
  compile                        send the buffer as plain Java source
  abort                          discard this session's buffered edits
  stats | health                 server-side counters / store health
  help | quit
|}

(* Flush every line: scripted clients are observed through their live
   transcript (pipes, files), where buffered output would stall the
   observer until exit. *)
let say fmt = Printf.ksprintf (fun s -> print_string s; flush stdout) fmt

let split_args line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && s.[i] = '\\' && s.[i + 1] = 'n' then begin
      Buffer.add_char buf '\n';
      go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let run ~client ~input =
  let pending : (string * string) option ref = ref None in
  let root = ref "" in
  let buf = Buffer.create 256 in
  let quit = ref false in
  let rpc req =
    print_endline (Protocol.describe_response (Client.rpc client req));
    flush stdout
  in
  let interactive = Unix.isatty (Unix.descr_of_in_channel input) in
  say "connected: session %d on %s\n" (Client.session client) (Client.server client);
  let handle line =
    match split_args line with
    | [] -> ()
    | "help" :: _ -> print_string help_text
    | ("quit" | "exit") :: _ -> quit := true
    | [ "edit"; name ] ->
      root := name;
      Buffer.clear buf;
      say "editing root %s (build the source with `type`, then `save`)\n" name
    | "edit" :: _ -> say "usage: edit ROOT\n"
    | "type" :: _ ->
      let text = if String.length line > 5 then String.sub line 5 (String.length line - 5) else "" in
      Buffer.add_string buf (unescape text);
      Buffer.add_char buf '\n'
    | "save" :: _ ->
      if !root = "" then say "no edit open (use `edit ROOT` first)\n"
      else begin
        let source = Buffer.contents buf in
        pending := Some (!root, source);
        rpc (Protocol.Edit { root = !root; source })
      end
    | "commit" :: _ -> rpc Protocol.Commit
    | "retry" :: _ -> begin
      match !pending with
      | None -> say "nothing to retry (no saved edit)\n"
      | Some (root, source) ->
        rpc (Protocol.Edit { root; source });
        rpc Protocol.Commit
    end
    | "compile" :: _ -> rpc (Protocol.Compile { source = Buffer.contents buf })
    | "roots" :: _ -> rpc (Protocol.Browse Protocol.Roots)
    | "census" :: _ -> rpc (Protocol.Browse Protocol.Census)
    | "programs" :: _ -> rpc (Protocol.Browse Protocol.Programs)
    | [ "root"; name ] -> rpc (Protocol.Browse (Protocol.Root name))
    | [ "get-link"; hp; link ] -> begin
      match (int_of_string_opt hp, int_of_string_opt link) with
      | Some hp, Some link -> rpc (Protocol.Get_link { hp; link })
      | _ -> say "usage: get-link HP LINK (both numbers)\n"
    end
    | "abort" :: _ -> rpc Protocol.Abort
    | "stats" :: _ -> rpc Protocol.Stats
    | "health" :: _ -> rpc Protocol.Health
    | cmd :: _ -> say "unknown command %s (try `help`)\n" cmd
  in
  (try
     while not !quit do
       if interactive then begin
         print_string "hp@> ";
         flush stdout
       end;
       match input_line input with
       | line -> handle line
       | exception End_of_file -> quit := true
     done;
     Client.close client
   with
  | Server.Frame.Closed ->
    flush stdout;
    prerr_endline "hpjava: server closed the connection";
    exit 1
  | Stdlib.Failure msg ->
    flush stdout;
    Printf.eprintf "hpjava: %s\n" msg;
    exit 1);
  flush stdout
