(* An interactive (and pipe-scriptable) shell over the hyper-programming
   session: the terminal stand-in for the paper's Figure 12 user
   interface.  Commands mirror the UI's gestures: type text, insert links
   (using the .hp link-spec syntax), press buttons, browse, Compile /
   Display Class / Go. *)

(* The UI session (editors, browser panels) — bound before [open Pstore]
   so it keeps the short name; the store's MVCC session is
   [Store.Session]. *)
module Ui_session = Session

open Pstore
open Hyperprog
module Session = Ui_session

let help_text =
  {|commands:
  edit [CLASS]             open a new editor (optionally naming the principal class)
  type TEXT                insert TEXT at the cursor (use \n for newlines)
  link SPEC                insert a hyper-link at the cursor (.hp spec, e.g. `link root x`,
                           `link method Person.marry`, `link int 42`)
  cursor LINE COL          move the cursor (0-based)
  show                     render the front editor
  press LINE COL           press the link button at a position (opens a browser panel)
  browse [root NAME|@OID|class NAME]   open a browser panel (default: the roots panel)
  panels                   render the browser panels
  row N [value|loc]        insert a link to row N of the front panel into the editor
  open N                   open row N of the front panel in a new panel
  compile                  compile the front editor's hyper-program
  display-class            compile and browse the principal class
  go [ARGS...]             compile and run the principal class's main
  save NAME                save the hyper-program under a persistent root
  edit-class CLASS         open the hyper-program a class was compiled from
  load NAME                load a hyper-program from a persistent root
  session [open|use N|status]  open / switch to / list snapshot-isolated store sessions
  commit                   publish the active session's buffered writes (first committer wins)
  abort                    discard the active session's buffered writes
  bind NAME N              set root NAME to int N (through the active session, if any)
  roots | census | gc | stabilise
  scrub [BUDGET]           run one scrubber step: verify object checksums and references
  health                   store health: shard states, scrub progress, quarantine, retries
  repair [N|all]           repair a degraded/offline shard (default: every unhealthy one)
  stats                    operation counters (and latencies while tracing is on)
  cache [on|off]           compile-cache and getLink-memo statistics / toggle both
  trace on|off|dump        toggle span tracing / dump the in-memory trace ring
  log                      show the session event log
  help | quit
|}

let split_args line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && s.[i] = '\\' && s.[i + 1] = 'n' then begin
      Buffer.add_char buf '\n';
      go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let say fmt = Printf.printf fmt

(* The store-level operator commands, shared between the full shell and
   maintenance mode (when a demoted shard blocks the VM boot, the
   operator still needs health / repair / stats to get out of it). *)

(* Render one banner line for an open store session: `stats` and
   `health` must make clear that object counts are the session's
   snapshot view, never its dirty buffer. *)
let session_banner = function
  | Some s when Store.Session.is_snapshot s ->
    let n = Store.Session.buffered_ops s in
    say "session %d (epoch %d): %d buffered op%s uncommitted; counts reflect the snapshot\n"
      (Store.Session.id s)
      (Store.Session.snapshot_epoch s)
      n
      (if n = 1 then "" else "s")
  | Some _ | None -> ()

let cmd_health ?session store =
  let stats =
    match session with
    | Some s -> Store.Session.stats s
    | None -> Store.stats store
  in
  session_banner session;
  say "live objects: %d\n" stats.Store.live;
  say "scrub: %s\n" (Format.asprintf "%a" Scrub.pp_progress (Store.scrub_progress store));
  say "quarantined: %d\n" stats.Store.quarantined;
  List.iter
    (fun (oid, reason) -> say "  @%d: %s\n" (Oid.to_int oid) reason)
    (Store.quarantined store);
  if Store.shards store > 1 then begin
    List.iter
      (fun (info : Store.shard_info) ->
        say "shard %d (%s): %d objects, %d quarantined, %d journal bytes, %d pending, %d \
             remembered\n"
          info.Store.shard info.Store.state info.Store.objects info.Store.quarantined
          info.Store.journal_bytes info.Store.pending_ops info.Store.remembered)
      (Store.shard_info store);
    say "unhealthy shards: %d\n" stats.Store.unhealthy_shards;
    List.iter
      (fun (h : Store.shard_health) ->
        if
          (match h.Store.h_state with Health.Healthy -> false | _ -> true)
          || h.Store.h_failures > 0 || h.Store.h_trips > 0
          || h.Store.h_degraded_reads > 0 || h.Store.h_refused_writes > 0
          || h.Store.h_repairs > 0
        then
          say "shard %d health: %s; %d consecutive failures, %d trips, %d degraded \
               reads, %d refused writes, %d repairs\n"
            h.Store.h_shard
            (Health.describe h.Store.h_state)
            h.Store.h_failures h.Store.h_trips h.Store.h_degraded_reads
            h.Store.h_refused_writes h.Store.h_repairs)
      (Store.health store)
  end;
  say "degraded ops: %d\n" (Obs.count (Store.obs store) Obs.Degraded_op);
  say "io retries absorbed by this store: %d\n" stats.Store.io_retries;
  let rs = Retry.stats () in
  say "retry totals: %d attempts, %d retried, %d absorbed, %d exhausted\n" rs.Retry.attempts
    rs.Retry.retries rs.Retry.absorbed rs.Retry.exhausted;
  List.iter (fun (label, n) -> say "  %s: %d\n" label n) (Retry.counters ())

let cmd_repair store rest =
  let render (r : Store.repair_report) =
    say "shard %d repaired (%s): %d objects restored, %d journal ops replayed, %d \
         references lost, %.1f ms\n"
      r.Store.r_shard
      (Health.state_name r.Store.r_was)
      r.Store.r_restored r.Store.r_replayed r.Store.r_lost r.Store.r_ms
  in
  let repair_all () =
    match Store.repair_all store with
    | [] -> say "all shards healthy; nothing to repair\n"
    | reports -> List.iter render reports
  in
  try
    match rest with
    | [] | "all" :: _ -> repair_all ()
    | n :: _ -> begin
      match int_of_string_opt n with
      | None -> say "usage: repair [N|all]\n"
      | Some k -> begin
        match Store.repair store k with
        | Some r -> render r
        | None -> say "shard %d is healthy; nothing to repair\n" k
      end
    end
  with
  | Invalid_argument e -> say "repair: %s\n" e
  | e ->
    (* the durable rewrite can re-fail; the shard stays demoted and
       the shell stays up so the operator can retry *)
    say "repair failed: %s\n" (Printexc.to_string e)

let cmd_stats ?session store =
  let obs = Store.obs store in
  say "operations: %d (tracing %s)\n" (Obs.total obs)
    (if Obs.enabled obs then "on" else "off");
  let st =
    match session with
    | Some s -> Store.Session.stats s
    | None -> Store.stats store
  in
  session_banner session;
  say "live objects: %d\n" st.Store.live;
  if st.Store.unhealthy_shards > 0 then
    say "unhealthy shards: %d (see `health`)\n" st.Store.unhealthy_shards;
  List.iter
    (fun (op, n) ->
      match Obs.latency obs op with
      | Some l ->
        say "  %-14s %8d   p50 %.0fns  p99 %.0fns  max %.0fns\n" (Obs.op_name op) n
          l.Obs.p50_ns l.Obs.p99_ns l.Obs.max_ns
      | None -> say "  %-14s %8d\n" (Obs.op_name op) n)
    (Obs.counts obs)

(* Maintenance mode: the session VM boots by writing to the store (class
   blobs, registry state), which a demoted shard refuses — so when boot
   itself is refused, drop to a store-only loop until the operator
   repairs or quits.  Returns [true] once the store is healthy again. *)
let maintenance ~input store =
  let quit = ref false in
  let interactive = Unix.isatty (Unix.descr_of_in_channel input) in
  while not (!quit || Store.healthy store) do
    if interactive then begin
      print_string "hp(maintenance)> ";
      flush stdout
    end;
    match input_line input with
    | exception End_of_file -> quit := true
    | line -> begin
      match split_args line with
      | [] -> ()
      | ("quit" | "exit") :: _ -> quit := true
      | "health" :: _ -> cmd_health store
      | "repair" :: rest -> cmd_repair store rest
      | "stats" :: _ -> cmd_stats store
      | cmd :: _ ->
        say "maintenance mode: %s unavailable (commands: health, repair [N|all], stats, \
             quit)\n"
          cmd
    end
  done;
  (not !quit) && Store.healthy store

let run_session ~input ~echo store session =
  let vm = Session.vm session in
  let b = Session.browser session in
  let with_editor f =
    match Session.front_editor session with
    | Some ed -> f ed
    | None -> say "no editor open (use `edit`)\n"
  in
  (* The open MVCC store sessions, oldest first, plus the one root
     reads/writes and the stats/health views currently route through —
     so the operator sees snapshot isolation from the command line, and
     two sessions in one shell can race to commit. *)
  let sessions : Store.Session.t list ref = ref [] in
  let active : Store.Session.t option ref = ref None in
  let prune () = sessions := List.filter Store.Session.is_open !sessions in
  let active_session () =
    prune ();
    match !active with
    | Some s when Store.Session.is_open s -> Some s
    | Some _ | None ->
      active := None;
      None
  in
  (* The handle the root commands go through: the active snapshot
     session, or the store's implicit default session. *)
  let cur () =
    match active_session () with
    | Some s -> s
    | None -> Store.default_session store
  in
  let quit = ref false in
  let handle line =
    match split_args line with
    | [] -> ()
    | "help" :: _ -> print_string help_text
    | ("quit" | "exit") :: _ -> quit := true
    | "edit" :: rest ->
      let class_name = match rest with name :: _ -> name | [] -> "" in
      let id, _ = Session.new_editor ~class_name session in
      say "editor %d open\n" id
    | "type" :: _ ->
      let text = String.sub line 5 (String.length line - 5) in
      with_editor (fun ed -> Editor.User_editor.type_text ed (unescape text))
    | "link" :: _ ->
      let spec = String.trim (String.sub line 4 (String.length line - 4)) in
      with_editor (fun ed ->
          match Hyper_source.parse_link vm spec with
          | link -> begin
            match Editor.User_editor.insert_link ed link with
            | Ok () -> say "inserted %s\n" (Format.asprintf "%a" Hyperlink.pp link)
            | Error e -> say "refused: %s\n" e
          end
          | exception Hyper_source.Format_error e -> say "bad link spec: %s\n" e)
    | [ "cursor"; l; c ] ->
      with_editor (fun ed ->
          Editor.User_editor.move_cursor ed
            { Editor.Basic_editor.line = int_of_string l; col = int_of_string c })
    | "show" :: _ -> with_editor (fun ed -> print_string (Editor.User_editor.render ed))
    | [ "press"; l; c ] -> begin
      match
        Session.press_link_button session
          { Editor.Basic_editor.line = int_of_string l; col = int_of_string c }
      with
      | Ok panel -> say "opened %s\n" (Browser.Ocb.entity_title b panel.Browser.Ocb.entity)
      | Error e -> say "press failed: %s\n" e
    end
    | [ "browse" ] -> ignore (Browser.Ocb.open_roots b)
    | [ "browse"; "root"; name ] -> begin
      match Store.Session.root (cur ()) name with
      | Some (Pvalue.Ref oid) -> ignore (Browser.Ocb.open_object b oid)
      | Some v -> say "%s = %s\n" name (Pvalue.to_string v)
      | None -> say "no root %s\n" name
    end
    | [ "browse"; "class"; name ] -> ignore (Browser.Ocb.open_class b name)
    | [ "browse"; target ] when String.length target > 1 && target.[0] = '@' ->
      ignore
        (Browser.Ocb.open_object b
           (Oid.of_int (int_of_string (String.sub target 1 (String.length target - 1)))))
    | "panels" :: _ -> print_string (Browser.Render.browser b)
    | "row" :: n :: rest -> begin
      let half =
        match rest with
        | "loc" :: _ -> Session.Location_half
        | _ -> Session.Value_half
      in
      match Session.insert_link_from_row session ~half ~row:(int_of_string n) with
      | Ok link -> say "inserted %s\n" (Format.asprintf "%a" Hyperlink.pp link)
      | Error e -> say "failed: %s\n" e
    end
    | [ "open"; n ] -> begin
      match Browser.Ocb.front b with
      | Some panel -> begin
        match Browser.Ocb.open_row b panel (int_of_string n) with
        | Some p -> say "opened %s\n" (Browser.Ocb.entity_title b p.Browser.Ocb.entity)
        | None -> say "row cannot be opened\n"
      end
      | None -> say "no panel open\n"
    end
    | "compile" :: _ -> begin
      match Session.compile session with
      | Editor.User_editor.Compiled classes -> say "compiled %s\n" (String.concat ", " classes)
      | Editor.User_editor.Compile_failed msg -> say "error: %s\n" msg
    end
    | "display-class" :: _ -> begin
      match Session.display_class session with
      | Ok panel -> say "displaying %s\n" (Browser.Ocb.entity_title b panel.Browser.Ocb.entity)
      | Error e -> say "error: %s\n" e
    end
    | "go" :: argv -> begin
      match Session.go ~argv session with
      | Ok principal ->
        if not echo then print_string (Session.output session);
        say "ran %s.main\n" principal
      | Error e -> say "error: %s\n" e
    end
    | [ "save"; name ] ->
      with_editor (fun ed ->
          let hp = Editor.User_editor.save ed in
          Store.Session.set_root (cur ()) name (Pvalue.Ref hp);
          say "saved as root %s\n" name)
    | "session" :: rest -> begin
      match rest with
      | "open" :: _ ->
        let s = Store.open_session store in
        sessions := !sessions @ [ s ];
        active := Some s;
        say "session %d open (epoch %d)\n" (Store.Session.id s)
          (Store.Session.snapshot_epoch s)
      | [ "use"; n ] -> begin
        prune ();
        match int_of_string_opt n with
        | None -> say "usage: session use N (N a session id)\n"
        | Some id -> begin
          match List.find_opt (fun s -> Store.Session.id s = id) !sessions with
          | Some s ->
            active := Some s;
            say "session %d active (epoch %d): %d buffered op%s\n" id
              (Store.Session.snapshot_epoch s)
              (Store.Session.buffered_ops s)
              (if Store.Session.buffered_ops s = 1 then "" else "s")
          | None -> say "no open session %d\n" id
        end
      end
      | [] | "status" :: _ -> begin
        prune ();
        match !sessions with
        | [] -> say "no session open (direct mode); `session open` starts one\n"
        | open_sessions ->
          let act = active_session () in
          List.iter
            (fun s ->
              let n = Store.Session.buffered_ops s in
              say "session %d open (epoch %d): %d buffered op%s%s\n" (Store.Session.id s)
                (Store.Session.snapshot_epoch s)
                n
                (if n = 1 then "" else "s")
                (match act with Some a when a == s -> " [active]" | _ -> ""))
            open_sessions
      end
      | _ -> say "usage: session [open|use N|status]\n"
    end
    | "commit" :: _ -> begin
      match active_session () with
      | None -> say "no session open; direct-mode writes commit immediately\n"
      | Some s -> begin
        let id = Store.Session.id s in
        let n = Store.Session.buffered_ops s in
        let t0 = Unix.gettimeofday () in
        match Store.Session.commit s with
        | () ->
          active := None;
          say "committed session %d: %d op%s in %.0f us\n" id n
            (if n = 1 then "" else "s")
            ((Unix.gettimeofday () -. t0) *. 1e6)
        | exception Failure.Commit_conflict { session = sid; oids; keys } ->
          active := None;
          say "commit conflict: session %d lost (first committer wins); clashes: %s\n" sid
            (String.concat ", "
               (List.map (fun o -> "@" ^ string_of_int (Oid.to_int o)) oids @ keys))
      end
    end
    | "abort" :: _ -> begin
      match active_session () with
      | None -> say "no session open\n"
      | Some s ->
        let n = Store.Session.buffered_ops s in
        Store.Session.abort s;
        active := None;
        say "aborted session %d: %d buffered op%s discarded\n" (Store.Session.id s) n
          (if n = 1 then "" else "s")
    end
    | [ "bind"; name; value ] -> begin
      match int_of_string_opt value with
      | None -> say "usage: bind NAME N (N an integer)\n"
      | Some n ->
        Store.Session.set_root (cur ()) name (Pvalue.Int (Int32.of_int n));
        say "%s = %d%s\n" name n
          (match active_session () with
          | Some s -> Printf.sprintf " (buffered in session %d)" (Store.Session.id s)
          | None -> "")
    end
    | [ "edit-class"; cls ] -> begin
      match Session.edit_class session cls with
      | Ok (id, _) -> say "opened hyper-program of %s in editor %d\n" cls id
      | Error e -> say "%s\n" e
    end
    | [ "load"; name ] -> begin
      match Store.Session.root (cur ()) name with
      | Some (Pvalue.Ref hp) when Storage_form.is_hyper_program vm hp ->
        let id, ed = Session.new_editor session in
        Editor.User_editor.load ed hp;
        say "loaded into editor %d\n" id
      | _ -> say "root %s does not hold a hyper-program\n" name
    end
    | "roots" :: _ ->
      let h = cur () in
      List.iter
        (fun name ->
          let v = Option.value (Store.Session.root h name) ~default:Pvalue.Null in
          say "%-24s %s\n" name (Pvalue.to_string v))
        (Store.Session.root_names h)
    | "census" :: _ -> print_string (Browser.Render.census store)
    | "gc" :: _ ->
      let stats = Store.gc store in
      say "%s\n" (Format.asprintf "%a" Gc.pp_stats stats);
      (* Keep the registry consistent with what the GC reclaimed. *)
      let pruned = Registry.prune vm in
      if pruned.Registry.cleared_slots > 0 || pruned.Registry.removed_origins > 0 then
        say "registry pruned: %d dead slots, %d stale origin records\n"
          pruned.Registry.cleared_slots pruned.Registry.removed_origins
    | "scrub" :: rest -> begin
      match (match rest with b :: _ -> int_of_string_opt b | [] -> Some Store.default_scrub_budget) with
      | None -> say "scrub: bad budget\n"
      | Some budget ->
        let report = Store.scrub ~budget store in
        say "scanned %d object%s: %d verified, %d primed%s\n" report.Scrub.scanned
          (if report.Scrub.scanned = 1 then "" else "s")
          report.Scrub.verified report.Scrub.primed
          (if report.Scrub.pass_complete then " (pass complete)" else "");
        List.iter
          (fun (oid, reason) -> say "quarantined @%d: %s\n" (Oid.to_int oid) reason)
          report.Scrub.newly_quarantined
    end
    | "health" :: _ -> cmd_health ?session:(active_session ()) store
    | "repair" :: rest -> cmd_repair store rest
    | "stats" :: _ -> cmd_stats ?session:(active_session ()) store
    | "cache" :: rest -> begin
      match rest with
      | [] ->
        let cc = Compile_cache.stats vm in
        let lm = Registry.memo_stats vm in
        say "compile cache (%s): %d hits, %d misses, %d/%d entries resident\n"
          (if Compile_cache.enabled vm then "on" else "off")
          cc.Compile_cache.hits cc.Compile_cache.misses cc.Compile_cache.entries
          cc.Compile_cache.capacity;
        say "getLink memo   (%s): %d hits, %d misses, %d/%d entries\n"
          (if Registry.memo_enabled vm then "on" else "off")
          lm.Registry.hits lm.Registry.misses lm.Registry.entries lm.Registry.capacity
      | "on" :: _ ->
        Compile_cache.set_enabled vm true;
        Registry.set_memo_enabled vm true;
        say "caches on\n"
      | "off" :: _ ->
        Compile_cache.set_enabled vm false;
        Registry.set_memo_enabled vm false;
        say "caches off\n"
      | _ -> say "usage: cache [on|off]\n"
    end
    | [ "trace"; "on" ] ->
      Obs.set_enabled (Store.obs store) true;
      say "tracing on\n"
    | [ "trace"; "off" ] ->
      Obs.set_enabled (Store.obs store) false;
      say "tracing off\n"
    | [ "trace"; "dump" ] -> begin
      let obs = Store.obs store in
      match Obs.events obs with
      | [] ->
        say "trace ring empty%s\n"
          (if Obs.enabled obs then "" else " (tracing is off; `trace on` first)")
      | events ->
        List.iter (fun e -> say "%s\n" (Format.asprintf "%a" Obs.pp_event e)) events
    end
    | "trace" :: _ -> say "usage: trace on|off|dump\n"
    | "stabilise" :: _ | "stabilize" :: _ ->
      Store.stabilise store;
      say "stabilised (%d objects)\n" (Store.size store)
    | "log" :: _ -> List.iter print_endline (Session.events session)
    | cmd :: _ -> say "unknown command %s (try `help`)\n" cmd
  in
  let interactive = Unix.isatty (Unix.descr_of_in_channel input) in
  (try
     while not !quit do
       if interactive then begin
         print_string "hp> ";
         flush stdout
       end;
       match input_line input with
       | line -> (
         (* A demoted shard refuses writes with a typed failure; the
            shell must survive it, or the operator can never reach
            `repair`. *)
         try handle line with
         | Failure.Shard_degraded { shard; state; _ } ->
           say "refused: shard %d is %s (run `repair %d` or `repair all`)\n"
             shard state shard
         | Invalid_argument msg ->
           (* e.g. gc / mark_dirty refused while a snapshot session is
              open — operator guidance, not a shell crash *)
           say "refused: %s\n" msg)
       | exception End_of_file -> quit := true
     done
   with e ->
     Printf.eprintf "shell error: %s\n" (Printexc.to_string e));
  try Store.stabilise store
  with Failure.Shard_degraded { shard; state; _ } ->
    Printf.eprintf
      "warning: shard %d is %s; its unpersisted changes await `repair` (other \
       shards are safe)\n"
      shard state

let run ~store_path ~input ~echo =
  let store =
    if Sys.file_exists store_path then Store.open_file store_path
    else begin
      let s = Store.create () in
      Store.configure s { (Store.config s) with Store.Config.backing = Some store_path };
      s
    end
  in
  (* The interactive shell absorbs transient I/O hiccups with bounded
     retries; the `health` command surfaces the counters.  Configured
     through the unified record so the recovered durability mode (and
     everything else) is kept as-is. *)
  Store.configure store
    { (Store.config store) with Store.Config.retry = Some Retry.default_policy };
  match Session.create ~echo store with
  | session -> run_session ~input ~echo store session
  | exception Failure.Shard_degraded { shard; state; _ } ->
    (* Booting the VM writes to the store, and a demoted shard refused
       it.  The operator gets a store-only loop to repair from; once the
       store is whole again, boot for real and carry on. *)
    say "shard %d is %s: the session VM cannot boot while a shard refuses writes\n"
      shard state;
    say "entering maintenance mode — `repair all` restores service, `quit` leaves\n";
    if maintenance ~input store then begin
      say "store healthy again; booting the session\n";
      run_session ~input ~echo store (Session.create ~echo store)
    end
