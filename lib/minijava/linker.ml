(* The class loader: links batches of class files into a running VM.

   Classes in a batch may reference each other; the linker orders
   definitions so superclasses and interfaces come first.  Every defined
   class is also written to the persistent store's blob table, making
   classes persistent: a store reopened later can relink them without
   recompiling (see Boot). *)

exception Link_error of string

let link_error fmt = Format.kasprintf (fun s -> raise (Link_error s)) fmt

let class_blob_prefix = "minijava.class:"
let order_blob = "minijava.class-order"

(* Topologically sort a batch by the extends/implements relation,
   considering only dependencies inside the batch. *)
let sort_batch (cfs : Classfile.t list) =
  let by_name = Hashtbl.create 16 in
  List.iter (fun cf -> Hashtbl.replace by_name cf.Classfile.cf_name cf) cfs;
  let visited = Hashtbl.create 16 in
  let result = ref [] in
  let rec visit trail name =
    if List.mem name trail then link_error "cyclic inheritance involving %s" name;
    match Hashtbl.find_opt by_name name with
    | None -> () (* outside the batch: must already be loaded *)
    | Some cf ->
      if not (Hashtbl.mem visited name) then begin
        Hashtbl.replace visited name ();
        let deps =
          (match cf.Classfile.cf_super with Some s -> [ s ] | None -> [])
          @ cf.Classfile.cf_interfaces
        in
        List.iter (visit (name :: trail)) deps;
        result := cf :: !result
      end
  in
  List.iter (fun cf -> visit [] cf.Classfile.cf_name) cfs;
  List.rev !result

let persist_class vm (cf : Classfile.t) =
  let open Pstore in
  Store.set_blob vm.Rt.store (class_blob_prefix ^ cf.Classfile.cf_name) (Classfile.encode cf);
  let order =
    match Store.blob vm.Rt.store order_blob with
    | Some s -> s
    | None -> ""
  in
  let names = String.split_on_char '\n' order |> List.filter (fun s -> s <> "") in
  if not (List.mem cf.Classfile.cf_name names) then
    Store.set_blob vm.Rt.store order_blob
      (String.concat "\n" (names @ [ cf.Classfile.cf_name ]))

(* Define a batch of class files.  [persist] (default true) writes them
   to the store's blob table. *)
let load_batch ?(persist = true) vm (cfs : Classfile.t list) =
  let ordered = sort_batch cfs in
  (* Verify external dependencies are present before defining anything. *)
  List.iter
    (fun cf ->
      let deps =
        (match cf.Classfile.cf_super with Some s -> [ s ] | None -> [])
        @ cf.Classfile.cf_interfaces
      in
      List.iter
        (fun dep ->
          let in_batch = List.exists (fun c -> String.equal c.Classfile.cf_name dep) ordered in
          if (not in_batch) && not (Rt.is_loaded vm dep) then
            link_error "class %s depends on unloaded class %s" cf.Classfile.cf_name dep)
        deps)
    ordered;
  let rcs = List.map (Rt.define_class vm) ordered in
  if persist then List.iter (persist_class vm) ordered;
  rcs

let load_class ?persist vm cf =
  match load_batch ?persist vm [ cf ] with
  | [ rc ] -> rc
  | _ -> assert false

(* -- redefinition -----------------------------------------------------------
   Redefining a loaded class (the fresh-class-loader analog, and the
   mechanism behind schema evolution): the old definition is swapped out,
   the new one linked, the instance layouts of loaded subclasses rebuilt,
   and every store instance of an affected class reconstructed in place —
   oids are preserved, so references and hyper-links stay valid. *)

(* Best-effort value migration when a field keeps its name but changes
   type: identical tags copy, safe numeric widenings convert, anything
   else resets to the default. *)
let migrate_value vm (v : Pstore.Pvalue.t) (target : Jtype.t) =
  let open Pstore in
  let default () = Rt.default_value target in
  match v, target with
  | Pvalue.Bool _, Jtype.Boolean
  | Pvalue.Byte _, Jtype.Byte
  | Pvalue.Short _, Jtype.Short
  | Pvalue.Char _, Jtype.Char
  | Pvalue.Int _, Jtype.Int
  | Pvalue.Long _, Jtype.Long
  | Pvalue.Float _, Jtype.Float
  | Pvalue.Double _, Jtype.Double
  | Pvalue.Null, (Jtype.Class _ | Jtype.Array _) -> v
  | Pvalue.Byte n, Jtype.Short -> Pvalue.Short n
  | Pvalue.Byte n, Jtype.Int | Pvalue.Short n, Jtype.Int | Pvalue.Char n, Jtype.Int ->
    Pvalue.Int (Int32.of_int n)
  | Pvalue.Int n, Jtype.Long -> Pvalue.Long (Int64.of_int32 n)
  | (Pvalue.Byte n | Pvalue.Short n), Jtype.Long -> Pvalue.Long (Int64.of_int n)
  | Pvalue.Int n, Jtype.Double -> Pvalue.Double (Int32.to_float n)
  | Pvalue.Float f, Jtype.Double -> Pvalue.Double f
  | Pvalue.Ref _, (Jtype.Class _ | Jtype.Array _) ->
    if Rt.value_conforms vm v (Jtype.descriptor target) then v else default ()
  | _ -> default ()

(* Rebuild a class's instance layout from its class file and the (already
   rebuilt) layout of its superclass. *)
let rebuild_layout vm rc =
  let super_layout =
    match rc.Rt.rc_super with
    | None -> [||]
    | Some super -> (Rt.get_class vm super).Rt.rc_layout
  in
  let own =
    rc.Rt.rc_classfile.Classfile.cf_fields
    |> List.filter (fun f -> not f.Classfile.f_static)
    |> List.map (fun f ->
           {
             Rt.rf_name = f.Classfile.f_name;
             rf_type = Jtype.of_descriptor f.Classfile.f_desc;
             rf_static = false;
           })
  in
  let layout = Array.append super_layout (Array.of_list own) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace index f.Rt.rf_name i) layout;
  rc.Rt.rc_layout <- layout;
  rc.Rt.rc_layout_index <- index

(* Reconstruct one instance in place against its class's new layout,
   using a snapshot of the old field indexes. *)
let reconstruct_instance vm old_index (record : Pstore.Heap.record) new_layout =
  let old_fields = record.Pstore.Heap.fields in
  let new_fields =
    Array.map
      (fun rf ->
        match Hashtbl.find_opt old_index rf.Rt.rf_name with
        | Some old_slot when old_slot < Array.length old_fields ->
          migrate_value vm old_fields.(old_slot) rf.Rt.rf_type
        | _ -> Rt.default_value rf.Rt.rf_type)
      new_layout
  in
  record.Pstore.Heap.fields <- new_fields

let inheritance_depth vm name =
  let rec go name acc =
    match (Rt.get_class vm name).Rt.rc_super with
    | Some super -> go super (acc + 1)
    | None -> acc
  in
  go name 0

(* Link a batch, redefining any classes that are already loaded.
   Returns the linked classes. *)
let load_or_redefine_batch ?persist vm (cfs : Classfile.t list) =
  let names = List.map (fun cf -> cf.Classfile.cf_name) cfs in
  let redefined = List.filter (Rt.is_loaded vm) names in
  if redefined = [] then load_batch ?persist vm cfs
  else begin
    (* Affected classes: redefined ones plus their loaded subclasses. *)
    let subclasses =
      List.filter
        (fun cls ->
          (not (List.mem cls redefined))
          && List.exists (fun r -> Rt.is_class_subtype vm cls r) redefined)
        vm.Rt.load_order
    in
    let affected = redefined @ subclasses in
    let old_indexes =
      List.map
        (fun cls -> (cls, Hashtbl.copy (Rt.get_class vm cls).Rt.rc_layout_index))
        affected
    in
    List.iter
      (fun cls ->
        Hashtbl.remove vm.Rt.classes cls;
        vm.Rt.load_order <-
          List.filter (fun n -> not (String.equal n cls)) vm.Rt.load_order)
      redefined;
    let rcs = load_batch ?persist vm cfs in
    (* Rebuild subclass layouts, parents before children. *)
    let ordered_subclasses =
      List.sort
        (fun a b -> Int.compare (inheritance_depth vm a) (inheritance_depth vm b))
        subclasses
    in
    List.iter (fun cls -> rebuild_layout vm (Rt.get_class vm cls)) ordered_subclasses;
    (* Reconstruct store instances of every affected class in place.
       This mutates records behind the store's journal, so flag the store
       for a full snapshot at its next stabilise. *)
    Pstore.Store.mark_dirty vm.Rt.store;
    let heap = Pstore.Store.heap vm.Rt.store in
    Pstore.Heap.iter
      (fun _oid entry ->
        match entry with
        | Pstore.Heap.Record r when List.mem r.Pstore.Heap.class_name affected -> begin
          let cls = r.Pstore.Heap.class_name in
          match Rt.find_class vm cls with
          | Some rc ->
            reconstruct_instance vm (List.assoc cls old_indexes) r rc.Rt.rc_layout
          | None -> ()
        end
        | _ -> ())
      heap;
    rcs
  end

(* Relink all classes previously persisted in the store, in their
   original definition order. *)
let relink_persisted vm =
  let open Pstore in
  match Store.blob vm.Rt.store order_blob with
  | None -> []
  | Some order ->
    let names = String.split_on_char '\n' order |> List.filter (fun s -> s <> "") in
    List.map
      (fun name ->
        match Store.blob vm.Rt.store (class_blob_prefix ^ name) with
        | Some data -> Rt.define_class vm (Classfile.decode data)
        | None -> link_error "missing class blob for %s" name)
      names
