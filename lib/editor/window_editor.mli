(** The window editor (paper Figure 10, middle layer): an API for the
    graphical display and editing of a basic editor's contents — faces,
    a viewport, a cursor, and rendering to styled segments or ANSI text. *)

type 'a t

type segment = {
  seg_text : string;
  seg_face : Face.t;
  seg_link : bool;  (** true for rendered link buttons *)
}

val create : ?width:int -> ?height:int -> 'a Basic_editor.t -> 'a t
val buffer : 'a t -> 'a Basic_editor.t

val cursor : 'a t -> Basic_editor.pos
val set_cursor : 'a t -> Basic_editor.pos -> unit
(** Clamps to the buffer and scrolls the viewport to keep the cursor
    visible. *)

val set_selection : 'a t -> (Basic_editor.pos * Basic_editor.pos) option -> unit
val selection : 'a t -> (Basic_editor.pos * Basic_editor.pos) option

val resize : 'a t -> width:int -> height:int -> unit
val scroll_to : 'a t -> int -> unit

val set_render_label : 'a t -> ('a Basic_editor.link -> string) -> unit
(** Override how link buttons render (default ["[" ^ label ^ "]"]); the
    user editor marks links with unreadable targets as ["[!" ^ label ^ "]"]. *)

val set_face : 'a t -> line:int -> start:int -> len:int -> Face.t -> unit
(** Attach a face to a text run.  Edits clear the touched line's runs;
    higher layers re-apply styling. *)

val clear_faces : ?line:int -> 'a t -> unit
val face_at : 'a t -> line:int -> col:int -> Face.t

val insert_at_cursor : 'a t -> string -> unit
val insert_link_at_cursor : 'a t -> 'a Basic_editor.link -> unit
val delete_selection : 'a t -> unit
val backspace : 'a t -> unit

val render_line : 'a t -> int -> segment list
val render_visible : 'a t -> segment list list
val render_ansi : 'a t -> string
val render_plain : 'a t -> string
