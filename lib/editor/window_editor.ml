(* The window editor (Figure 10, middle layer): an API for the graphical
   display and editing of a basic editor's contents.  It adds faces
   (fonts, sizes, styles, colours), a viewport, a cursor, and rendering —
   to styled segments for programmatic use and to ANSI text for display
   (the AWT substitution). *)

type 'a t = {
  buffer : 'a Basic_editor.t;
  mutable cursor : Basic_editor.pos;
  mutable selection : (Basic_editor.pos * Basic_editor.pos) option;
  mutable top_line : int; (* first visible line *)
  mutable height : int;
  mutable width : int;
  mutable face_runs : (int * int * int * Face.t) list; (* line, start, len, face *)
  mutable link_face : Face.t;
  mutable render_label : 'a Basic_editor.link -> string;
}

type segment = {
  seg_text : string;
  seg_face : Face.t;
  seg_link : bool;
}

let create ?(width = 80) ?(height = 24) buffer =
  {
    buffer;
    cursor = { Basic_editor.line = 0; col = 0 };
    selection = None;
    top_line = 0;
    height;
    width;
    face_runs = [];
    link_face = Face.link_button;
    render_label = (fun l -> "[" ^ l.Basic_editor.label ^ "]");
  }

let buffer w = w.buffer
let cursor w = w.cursor

let set_cursor w pos =
  let line = max 0 (min pos.Basic_editor.line (Basic_editor.line_count w.buffer - 1)) in
  let col = max 0 (min pos.Basic_editor.col (String.length (Basic_editor.line_text w.buffer line))) in
  w.cursor <- { Basic_editor.line; col };
  (* Scroll the viewport to keep the cursor visible. *)
  if line < w.top_line then w.top_line <- line
  else if line >= w.top_line + w.height then w.top_line <- line - w.height + 1

let set_selection w range = w.selection <- range
let selection w = w.selection

let resize w ~width ~height =
  w.width <- width;
  w.height <- height

let scroll_to w line = w.top_line <- max 0 line

(* How link buttons render.  The default is "[label]"; the user editor
   overrides this to mark links with unreadable targets. *)
let set_render_label w f = w.render_label <- f

(* Faces are attached to (line, start, len) runs.  Edits invalidate the
   runs of the touched lines; higher layers re-apply styling. *)
let set_face w ~line ~start ~len face =
  w.face_runs <- (line, start, len, face) :: w.face_runs

let clear_faces ?line w =
  match line with
  | None -> w.face_runs <- []
  | Some n -> w.face_runs <- List.filter (fun (l, _, _, _) -> l <> n) w.face_runs

let face_at w ~line ~col =
  let matching =
    List.find_opt (fun (l, s, len, _) -> l = line && col >= s && col < s + len) w.face_runs
  in
  match matching with
  | Some (_, _, _, face) -> face
  | None -> Face.default

(* -- editing operations (cursor-relative) ----------------------------------- *)

let insert_at_cursor w s =
  clear_faces ~line:w.cursor.Basic_editor.line w;
  let end_pos = Basic_editor.insert_text w.buffer w.cursor s in
  set_cursor w end_pos

let insert_link_at_cursor w link =
  Basic_editor.insert_link w.buffer w.cursor link

let delete_selection w =
  match w.selection with
  | None -> ()
  | Some (a, b) ->
    let from, to_ = if Basic_editor.pos_compare a b <= 0 then (a, b) else (b, a) in
    Basic_editor.delete_range w.buffer from to_;
    w.selection <- None;
    set_cursor w from

let backspace w =
  let { Basic_editor.line; col } = w.cursor in
  if col > 0 then begin
    Basic_editor.delete_range w.buffer { Basic_editor.line; col = col - 1 } w.cursor;
    set_cursor w { Basic_editor.line; col = col - 1 }
  end
  else if line > 0 then begin
    let prev_len = String.length (Basic_editor.line_text w.buffer (line - 1)) in
    Basic_editor.delete_range w.buffer
      { Basic_editor.line = line - 1; col = prev_len }
      { Basic_editor.line = line; col = 0 };
    set_cursor w { Basic_editor.line = line - 1; col = prev_len }
  end

(* -- rendering ----------------------------------------------------------------- *)

(* One visible line as styled segments: text runs split at face
   boundaries, with link buttons spliced in at their offsets. *)
let render_line w n =
  let text = Basic_editor.line_text w.buffer n in
  let links = Basic_editor.line_links w.buffer n in
  let segments = ref [] in
  let emit_text from to_ =
    if to_ > from then begin
      (* split [from,to_) at face-run boundaries *)
      let rec go col =
        if col < to_ then begin
          let face = face_at w ~line:n ~col in
          let stop = ref (col + 1) in
          while !stop < to_ && Face.equal (face_at w ~line:n ~col:!stop) face do
            incr stop
          done;
          segments := { seg_text = String.sub text col (!stop - col); seg_face = face; seg_link = false } :: !segments;
          go !stop
        end
      in
      go from
    end
  in
  let cursor_col = ref 0 in
  List.iter
    (fun (offset, link) ->
      emit_text !cursor_col offset;
      segments :=
        { seg_text = w.render_label link; seg_face = w.link_face; seg_link = true } :: !segments;
      cursor_col := max !cursor_col offset)
    links;
  emit_text !cursor_col (String.length text);
  List.rev !segments

let render_visible w =
  let last = min (Basic_editor.line_count w.buffer) (w.top_line + w.height) in
  List.init (last - w.top_line) (fun i -> render_line w (w.top_line + i))

(* ANSI rendering of the visible region. *)
let render_ansi w =
  let buf = Buffer.create 1024 in
  List.iter
    (fun segments ->
      List.iter
        (fun seg ->
          let prefix = Face.ansi seg.seg_face in
          Buffer.add_string buf prefix;
          Buffer.add_string buf seg.seg_text;
          if prefix <> "" then Buffer.add_string buf Face.ansi_reset)
        segments;
      Buffer.add_char buf '\n')
    (render_visible w);
  Buffer.contents buf

(* Plain-text rendering (labels in brackets, no colours). *)
let render_plain w =
  let buf = Buffer.create 1024 in
  List.iter
    (fun segments ->
      List.iter (fun seg -> Buffer.add_string buf seg.seg_text) segments;
      Buffer.add_char buf '\n')
    (render_visible w);
  Buffer.contents buf
