(* The hyper-program editor (Figure 10, top layer): a user editor built
   on the window editor API, whose links are hyper-links.

   It supports the Section 5.4 interactions: composing by typing and
   inserting links, saving to / loading from the storage form, a
   syntactic-legality check for insertions (Section 2), syntax
   highlighting, and the Compile / Display Class / Go commands via the
   dynamic compiler. *)

open Minijava
open Hyperprog

type t = {
  window : Hyperlink.t Window_editor.t;
  vm : Rt.t;
  mutable class_name : string;
  mutable last_error : string option;
  mutable stored_as : Pstore.Oid.t option; (* last storage-form instance *)
}

(* A hyper-link is broken when any store object it pins cannot be read
   (quarantined by the scrubber, or dangling). *)
let link_broken vm link =
  List.exists
    (fun oid ->
      match Pstore.Store.try_get Rt.(vm.store) oid with
      | Ok _ -> false
      | Error _ -> true)
    (Hyperlink.referenced_oids link)

let create ?(class_name = "") vm =
  let window = Window_editor.create (Basic_editor.create ()) in
  (* Broken links render distinctly: [!label] instead of [label]. *)
  Window_editor.set_render_label window (fun l ->
      if link_broken vm l.Basic_editor.payload then "[!" ^ l.Basic_editor.label ^ "]"
      else "[" ^ l.Basic_editor.label ^ "]");
  { window; vm; class_name; last_error = None; stored_as = None }

let window ed = ed.window
let buffer ed = Window_editor.buffer ed.window
let class_name ed = ed.class_name
let set_class_name ed name = ed.class_name <- name
let last_error ed = ed.last_error

(* -- composing --------------------------------------------------------------- *)

let type_text ed s = Window_editor.insert_at_cursor ed.window s

let move_cursor ed pos = Window_editor.set_cursor ed.window pos

(* Editing form <-> editor buffer. *)
let editing_form ed =
  let text, links = Basic_editor.to_flat (buffer ed) in
  let flat_links =
    List.map (fun (pos, l) -> (pos, l.Basic_editor.payload, l.Basic_editor.label)) links
  in
  Editing_form.of_flat ~class_name:ed.class_name { Editing_form.text; flat_links }

let load_form ed form =
  let { Editing_form.text; flat_links } = Editing_form.to_flat form in
  let links =
    List.map
      (fun (pos, payload, label) -> (pos, { Basic_editor.payload; label }))
      flat_links
  in
  let fresh = Basic_editor.of_flat (text, links) in
  (Window_editor.buffer ed.window).Basic_editor.lines <- fresh.Basic_editor.lines;
  ed.class_name <- form.Editing_form.class_name;
  Window_editor.set_cursor ed.window { Basic_editor.line = 0; col = 0 }

(* Insert a hyper-link at the cursor.  When [check] (default true) the
   insertion is first validated against the link's syntactic production;
   an illegal insertion is refused with an explanation. *)
let insert_link ?(check = true) ?label ed link =
  let label = match label with Some l -> l | None -> Hyperlink.default_label ed.vm link in
  let legal =
    if not check then Productions.Legal
    else begin
      let form = editing_form ed in
      let flat = Editing_form.to_flat form in
      let text, _ = Basic_editor.to_flat (buffer ed) in
      ignore text;
      let cursor = Window_editor.cursor ed.window in
      (* absolute position of the cursor in the flat text *)
      let abs_pos =
        let rec go i acc =
          if i >= cursor.Basic_editor.line then acc + cursor.Basic_editor.col
          else go (i + 1) (acc + String.length (Basic_editor.line_text (buffer ed) i) + 1)
        in
        go 0 0
      in
      Productions.insertion_legal ~env:(Rt.class_env ed.vm) flat ~pos:abs_pos ~link
    end
  in
  match legal with
  | Productions.Legal ->
    Window_editor.insert_link_at_cursor ed.window { Basic_editor.payload = link; label };
    ed.last_error <- None;
    Ok ()
  | Productions.Illegal reason ->
    ed.last_error <- Some reason;
    Error reason

(* Press a link button: return the hyper-link under the position so the
   UI can ask the browser to display it (Section 5.4.1). *)
let press_button ed pos =
  Option.map (fun l -> l.Basic_editor.payload) (Basic_editor.link_at (buffer ed) pos)

(* -- syntax highlighting ------------------------------------------------------- *)

let java_keywords =
  List.map fst Token.keywords

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Per-line highlighting: keywords, string literals, // comments.  Block
   comments spanning lines are out of scope for the face pass. *)
let highlight ed =
  let w = ed.window in
  Window_editor.clear_faces w;
  let buffer = Window_editor.buffer w in
  for n = 0 to Basic_editor.line_count buffer - 1 do
    let text = Basic_editor.line_text buffer n in
    let len = String.length text in
    let i = ref 0 in
    while !i < len do
      let c = text.[!i] in
      if c = '/' && !i + 1 < len && text.[!i + 1] = '/' then begin
        Window_editor.set_face w ~line:n ~start:!i ~len:(len - !i) Face.comment;
        i := len
      end
      else if c = '"' then begin
        let stop = ref (!i + 1) in
        while !stop < len && text.[!stop] <> '"' do
          if text.[!stop] = '\\' then incr stop;
          incr stop
        done;
        let stop = min (len - 1) !stop in
        Window_editor.set_face w ~line:n ~start:!i ~len:(stop - !i + 1) Face.string_lit;
        i := stop + 1
      end
      else if is_word_char c && (c < '0' || c > '9') then begin
        let stop = ref !i in
        while !stop < len && is_word_char text.[!stop] do
          incr stop
        done;
        let word = String.sub text !i (!stop - !i) in
        if List.mem word java_keywords then
          Window_editor.set_face w ~line:n ~start:!i ~len:(!stop - !i) Face.keyword;
        i := !stop
      end
      else incr i
    done
  done

(* -- persistence ----------------------------------------------------------------- *)

(* Save the buffer to the persistent store as a storage-form instance. *)
let save ed =
  let form = editing_form ed in
  let hp_oid = Editing_form.to_storage ed.vm form in
  ed.stored_as <- Some hp_oid;
  hp_oid

let load ed hp_oid =
  load_form ed (Editing_form.of_storage ed.vm hp_oid);
  ed.stored_as <- Some hp_oid

(* -- compile / display class / go (Section 5.4.2) ---------------------------------- *)

type compile_outcome =
  | Compiled of string list (* class names *)
  | Compile_failed of string

let compile ?mode ed =
  let hp_oid = save ed in
  match Dynamic_compiler.compile_hyper_program ?mode ed.vm hp_oid with
  | rcs ->
    ed.last_error <- None;
    Compiled (List.map (fun rc -> rc.Rt.rc_name) rcs)
  | exception Jcompiler.Compile_error e ->
    (* Reported in terms of the ORIGINAL hyper-program, via the textual
       form's source map — the improvement the paper plans in 5.4.2. *)
    let msg = Dynamic_compiler.explain_error ed.vm hp_oid e in
    ed.last_error <- Some msg;
    Compile_failed msg
  | exception Rt.Jerror { jclass; message; _ } ->
    let msg = jclass ^ ": " ^ message in
    ed.last_error <- Some msg;
    Compile_failed msg

(* The Go button: compile, then run the principal class's main method.
   By default the principal class is the first class defined. *)
let go ?mode ?(argv = []) ed =
  let hp_oid = save ed in
  match Dynamic_compiler.go ?mode ed.vm hp_oid ~argv with
  | principal ->
    ed.last_error <- None;
    Ok principal
  | exception Jcompiler.Compile_error e ->
    let msg = Dynamic_compiler.explain_error ed.vm hp_oid e in
    ed.last_error <- Some msg;
    Error msg
  | exception Rt.Jerror { jclass; message; _ } ->
    let msg = jclass ^ ": " ^ message in
    ed.last_error <- Some msg;
    Error msg

(* Render the editor contents. *)
let render ?(ansi = false) ed =
  highlight ed;
  if ansi then Window_editor.render_ansi ed.window else Window_editor.render_plain ed.window

(* -- drag and drop (Section 5.4.1, future work — implemented) ------------------ *)

(* Move a link button from one position to another within the buffer. *)
let drag_link ed ~from ~to_ =
  match Basic_editor.remove_link_at (buffer ed) from with
  | None -> Error "no link at the source position"
  | Some link ->
    (* Removing a link never changes text, so [to_] is still valid. *)
    Basic_editor.insert_link (buffer ed) to_ link;
    Ok ()
