(** Store observability: monotonic operation counters, latency
    histograms, and a bounded in-memory trace ring.

    Every store (and the registry / dynamic-compiler layers above it)
    carries an [Obs.t].  Counters are always on — a single array
    increment per operation, cheap enough for the hottest read path.
    Latency recording and the trace ring are gated by {!enabled}
    (tracing): when tracing is off, {!span} costs exactly one counter
    bump and no clock read, so disabled overhead is negligible.

    The close/crash protocol: {!flush} (called by [Store.close]) seals a
    final counter {!snapshot} and empties the ring; {!drop} (called by
    [Store.crash]) discards the ring without snapshotting, exactly as a
    process crash would.  A reopened store builds a fresh [Obs.t], so
    metrics always start clean. *)

(** One counter / histogram / trace class per store operation kind. *)
type op =
  | Get  (** object reads: get, find, field, elem, class_of, ... *)
  | Set  (** mutations: set_field, set_elem, roots, blobs *)
  | Alloc
  | Root_lookup  (** named-root reads *)
  | Stabilise
  | Journal_append  (** write-ahead journal records appended *)
  | Compaction
  | Image_save
  | Image_load
  | Scrub_step
  | Retry  (** transient-I/O retries absorbed *)
  | Quarantine_hit  (** reads refused because the target is quarantined *)
  | Gc
  | Get_link  (** registry link retrievals *)
  | Compile  (** dynamic-compiler invocations *)
  | Transaction
  | Cache_hit  (** compile-cache / link-memo lookups answered from cache *)
  | Cache_miss  (** cache lookups that fell through to the slow path *)
  | Group_commit  (** multi-op journal deltas coalesced into one batch record *)
  | Repair  (** shard repairs (promotions back to healthy) *)
  | Degraded_op
      (** operations touched by a demoted shard: writes refused with
          [Failure.Shard_degraded] plus reads served degraded *)
  | Session_commit  (** MVCC session commits replayed through the journal *)
  | Conflict
      (** session commits refused by first-committer-wins detection
          ([Failure.Commit_conflict] raised) *)
  | Net_request  (** wire-protocol requests dispatched by the server *)
  | Net_error
      (** wire-protocol requests answered with a typed error frame
          (malformed frames, auth refusals, failed operations) *)

val all_ops : op list
val op_name : op -> string

(** A structured trace event (one per {!span} while tracing is on). *)
type event = {
  seq : int;  (** monotonic event number *)
  ev_op : op;
  label : string;
  oid : Oid.t option;
  bytes : int;
  duration_ns : float;
}

val pp_event : Format.formatter -> event -> unit

(** Latency summary of one operation class (tracing-on spans only). *)
type latency = {
  timed : int;  (** spans timed since creation/reset *)
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
}

(** Final counters sealed by {!flush} (the [Store.close] path). *)
type snapshot = {
  at_total : int;  (** total operation count when sealed *)
  final_counts : (op * int) list;  (** nonzero counters, in [all_ops] order *)
}

type t

val default_ring_capacity : int
(** 256 events. *)

val create : ?ring_capacity:int -> unit -> t

(** {1 Tracing switch} *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val ring_capacity : t -> int

val set_ring_capacity : t -> int -> unit
(** Resize (and clear) the trace ring.  [0] disables event capture while
    keeping latency histograms. *)

(** {1 Recording} *)

val incr : t -> op -> unit
val add : t -> op -> int -> unit
(** Counter bumps are atomic and safe from pool domains; histograms,
    the trace ring, and the tracing switch remain single-domain state
    (the store never enables tracing on per-shard [Obs.t]s). *)

val record : t -> op -> ?oid:Oid.t -> ?bytes:int -> ?label:string -> float -> unit
(** Record a duration (ns) into the op's histogram and the trace ring.
    No-op while tracing is disabled.  Does {e not} bump the counter. *)

val span : t -> op -> ?oid:Oid.t -> ?bytes:int -> ?label:string -> (unit -> 'a) -> 'a
(** Count one operation and run the thunk.  With tracing enabled the
    duration is also timed and recorded (even when the thunk raises);
    disabled, this is one counter increment — no clock, no allocation
    beyond the closure. *)

(** {1 Reading} *)

val count : t -> op -> int
val counts : t -> (op * int) list
(** Nonzero counters, in [all_ops] order. *)

val total : t -> int
val latency : t -> op -> latency option
(** [None] until at least one span of this class was timed. *)

val events : t -> event list
(** Ring contents, oldest first (at most {!ring_capacity}). *)

val clear_events : t -> unit

(** {1 Lifecycle} *)

val reset : t -> unit
(** Zero counters and histograms, clear the ring, forget any snapshot.
    The tracing switch and ring capacity are kept. *)

val flush : t -> unit
(** Seal a final counter {!snapshot}, clear the ring, and stop tracing:
    the orderly [Store.close] path.  Idempotent. *)

val drop : t -> unit
(** Clear the ring and stop tracing {e without} snapshotting — the
    [Store.crash] path: in-flight trace state is lost, as it would be. *)

val final_snapshot : t -> snapshot option
(** The counters sealed by the last {!flush}, if any. *)
