(* Binary encoding primitives shared by the store image format and the
   MiniJava class-file format.  Little-endian, length-prefixed strings. *)

type writer = Buffer.t

type reader = {
  data : string;
  mutable pos : int;
}

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let writer () = Buffer.create 4096

let contents w = Buffer.contents w

let reset w = Buffer.clear w

let reader data = { data; pos = 0 }

let remaining r = String.length r.data - r.pos

let at_end r = remaining r = 0

(* -- writing ------------------------------------------------------------ *)

let put_u8 w n =
  assert (n >= 0 && n < 256);
  Buffer.add_char w (Char.chr n)

let put_bool w b = put_u8 w (if b then 1 else 0)

let put_i32 w (n : int32) =
  Buffer.add_char w (Char.chr (Int32.to_int (Int32.logand n 0xffl)));
  Buffer.add_char w (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical n 8) 0xffl)));
  Buffer.add_char w (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical n 16) 0xffl)));
  Buffer.add_char w (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical n 24) 0xffl)))

let put_int w n = put_i32 w (Int32.of_int n)

let put_i64 w (n : int64) =
  let byte i = Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xffL)) in
  for i = 0 to 7 do Buffer.add_char w (byte i) done

let put_f64 w f = put_i64 w (Int64.bits_of_float f)

let put_string w s =
  put_int w (String.length s);
  Buffer.add_string w s

let put_list w put_elem xs =
  put_int w (List.length xs);
  List.iter (put_elem w) xs

let put_array w put_elem xs =
  put_int w (Array.length xs);
  Array.iter (put_elem w) xs

let put_option w put_elem = function
  | None -> put_u8 w 0
  | Some x -> put_u8 w 1; put_elem w x

(* -- reading ------------------------------------------------------------ *)

let get_u8 r =
  if r.pos >= String.length r.data then decode_error "get_u8: end of input";
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> decode_error "get_bool: invalid byte %d" n

let get_i32 r =
  let b0 = get_u8 r and b1 = get_u8 r and b2 = get_u8 r and b3 = get_u8 r in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

let get_int r =
  let n = Int32.to_int (get_i32 r) in
  n

let get_i64 r =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * i))
  done;
  !acc

let get_f64 r = Int64.float_of_bits (get_i64 r)

let put_bytes w s = Buffer.add_string w s

let get_bytes r n =
  if n < 0 || n > remaining r then decode_error "get_bytes: bad length %d" n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_string r =
  let n = get_int r in
  if n < 0 || n > remaining r then decode_error "get_string: bad length %d" n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get_elem =
  let n = get_int r in
  if n < 0 then decode_error "get_list: bad length %d" n;
  List.init n (fun _ -> get_elem r)

let get_array r get_elem =
  let n = get_int r in
  if n < 0 then decode_error "get_array: bad length %d" n;
  Array.init n (fun _ -> get_elem r)

let get_option r get_elem =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (get_elem r)
  | n -> decode_error "get_option: invalid tag %d" n

(* -- CRC-32 (IEEE 802.3 polynomial) -------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffffl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xffffffffl

(* -- checksummed frames ---------------------------------------------------

   The framing shared by per-object image records and write-ahead journal
   records: [int length][u32 crc32(payload)][payload].  Length lets a
   reader skip a frame whose payload it cannot decode; the checksum lets
   it tell silent corruption apart from a format change. *)

let put_frame w payload =
  put_int w (String.length payload);
  put_i32 w (crc32 payload);
  put_bytes w payload

(* Read a frame, verifying its checksum.  On a checksum mismatch the
   reader is still advanced past the frame, so salvage loops can report
   the bad frame and continue with the next one. *)
let checked_frame r =
  let len = get_int r in
  if len < 0 || len > remaining r then
    decode_error "frame length %d exceeds %d remaining bytes" len (remaining r);
  let stored = get_i32 r in
  let payload = get_bytes r len in
  let actual = crc32 payload in
  if Int32.equal stored actual then Ok payload
  else Error (Printf.sprintf "frame checksum mismatch: stored %ld, computed %ld" stored actual)

let get_frame r =
  match checked_frame r with
  | Ok payload -> payload
  | Error msg -> decode_error "%s" msg
