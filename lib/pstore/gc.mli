(** Reachability-based garbage collection with weak-reference semantics.

    Weak cells are traced as heap objects, but their targets are not: a
    live weak cell whose target is otherwise unreachable is cleared to
    [Null] and the target is swept. *)

type stats = {
  live : int;  (** objects remaining after the sweep *)
  swept : int;  (** objects reclaimed *)
  weak_cleared : int;  (** weak cells whose target died this cycle *)
}

val pp_stats : Format.formatter -> stats -> unit

val collect : ?extra_roots:Oid.t list -> Heap.t -> Roots.t -> stats
(** Run a full mark–sweep cycle.  [extra_roots] pins additional objects
    (e.g. those referenced by a running VM). *)

val reachable : ?extra_roots:Oid.t list -> Heap.t -> Roots.t -> Oid.Set.t
(** The set of strongly reachable oids, without sweeping. *)

val collect_sharded :
  nshards:int ->
  shard_of:(Oid.t -> int) ->
  ?extra_roots:Oid.t list ->
  Heap.t ->
  Roots.t ->
  stats * Oid.Set.t array
(** Like {!collect}, but the mark phase runs per shard on the domain
    pool: each shard traces the closure of its own objects and exports
    cross-shard references to the owning shard, in rounds, until no new
    oid crosses a boundary.  Also returns each shard's remembered set —
    the live oids in that shard referenced from {e other} shards — which
    is what lets later sweeps stay per-shard.  Weak-clear and sweep run
    on the calling domain (they mutate the shared heap). *)
