(** Top-level alias for the store's handle-first session surface.

    [Pstore.Session] is {!Store.Session} re-exported under a shorter
    path, plus the scoped helper {!with_session}.  See the {!Store}
    interface for the full semantics: snapshot isolation, buffered
    writes, first-committer-wins commit. *)

include module type of Store.Session with type t = Store.Session.t

val open_ : Store.t -> t
(** [Store.open_session]: pin a snapshot session on the committed state
    as of now. *)

val default : Store.t -> t
(** [Store.default_session]: the store's implicit direct-mode handle. *)

val with_session : Store.t -> (t -> 'a) -> 'a
(** Open a session, run the body, then commit — or abort if the body
    raises (the exception is re-raised).  A body that already committed
    or aborted its session is left alone.  [Failure.Commit_conflict]
    from the final commit propagates to the caller, the session having
    been aborted. *)
