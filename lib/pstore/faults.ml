(* Fault injection for durability testing.  A single global injector is
   enough: tests arm exactly one fault at a time.  Faults are one-shot —
   firing disarms — so the recovery I/O that follows a simulated crash
   runs clean.

   Sharded stores run stabilise I/O from pool domains, so the injector
   must stay deterministic under parallelism: all mutable state lives
   behind one mutex, and exactly one domain can consume the armed fault
   (budget accounting and the fire itself happen under the lock).  The
   common case — nothing armed — is kept lock-free via an atomic flag so
   production writes pay one load, not a mutex. *)

exception Fault_injected of string

type fault =
  | Fail_after_bytes of int
  | Short_write of int
  | Rename_fails
  | Fsync_fails
  | Bit_flip of int
  | Kill_after_bytes of int
  | Intr_storm of int

let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Mirrors [current <> None]; read without the lock on hot paths. *)
let armed_flag = Atomic.make false
let current : fault option ref = ref None

(* When set, the armed fault only fires on I/O performed inside
   [with_shard_scope target] — sharded stores scope each shard's I/O so
   tests can break exactly one fault domain.  The scope is domain-local:
   every pool domain tags its own shard's work. *)
let target : int option ref = ref None
let scope_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_shard_scope k f =
  let old = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key (Some k);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key old) f

let shard_scope () = Domain.DLS.get scope_key

(* Bytes written while the current fault has been armed. *)
let written = ref 0
let fired_count = Atomic.make 0

let arm ?shard f =
  locked (fun () ->
      current := Some f;
      target := shard;
      written := 0;
      Atomic.set armed_flag true)

let disarm () =
  locked (fun () ->
      current := None;
      target := None;
      Atomic.set armed_flag false)

let armed () = locked (fun () -> !current)
let fired () = Atomic.get fired_count

(* Call with [m] held (all callers are inside [locked]). *)
let fire_locked msg =
  current := None;
  target := None;
  Atomic.set armed_flag false;
  Atomic.incr fired_count;
  raise (Fault_injected msg)

(* Does the armed fault apply to I/O issued from this domain's scope?
   Untargeted faults fire anywhere; targeted faults fire only inside the
   matching [with_shard_scope] (and their byte budgets count only the
   targeted shard's writes).  Call with [m] held. *)
let in_scope_locked () =
  match !target with
  | None -> true
  | Some k -> Domain.DLS.get scope_key = Some k

(* An EINTR storm is not one-shot: it fires [n] times before disarming,
   modelling a burst of interrupted syscalls that a retry policy must
   ride out.  The op never happened — no partial bytes land. *)
let storm_fire_locked op n =
  if n <= 1 then begin
    current := None;
    target := None;
    Atomic.set armed_flag false
  end
  else current := Some (Intr_storm (n - 1));
  Atomic.incr fired_count;
  raise (Unix.Unix_error (Unix.EINTR, op, ""))

let with_fault f body =
  arm f;
  match body () with
  | v ->
    disarm ();
    Ok v
  | exception e ->
    disarm ();
    Error e

(* A partial write must actually reach the OS before we simulate the
   crash, otherwise the "torn" bytes would vanish with the buffer. *)
let partial_write oc s n =
  output_substring oc s 0 n;
  flush oc

let output_string oc s =
  if not (Atomic.get armed_flag) then Stdlib.output_string oc s
  else
    locked (fun () ->
        if not (in_scope_locked ()) then Stdlib.output_string oc s
        else
        match !current with
        | None -> Stdlib.output_string oc s
        | Some (Intr_storm n) -> storm_fire_locked "write" n
        | Some (Fail_after_bytes budget) ->
          let len = String.length s in
          if !written + len <= budget then begin
            Stdlib.output_string oc s;
            written := !written + len
          end
          else begin
            partial_write oc s (budget - !written);
            fire_locked (Printf.sprintf "write failed after %d bytes" budget)
          end
        | Some (Short_write n) ->
          partial_write oc s (min n (String.length s));
          fire_locked
            (Printf.sprintf "short write: %d of %d bytes"
               (min n (String.length s))
               (String.length s))
        | Some (Bit_flip off) ->
          let len = String.length s in
          if off >= !written && off < !written + len then begin
            let b = Bytes.of_string s in
            let i = off - !written in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
            Stdlib.output_string oc (Bytes.unsafe_to_string b);
            current := None;
            Atomic.set armed_flag false;
            Atomic.incr fired_count
          end
          else begin
            Stdlib.output_string oc s;
            written := !written + len
          end
        | Some (Kill_after_bytes budget) ->
          let len = String.length s in
          if !written + len <= budget then begin
            Stdlib.output_string oc s;
            written := !written + len
          end
          else begin
            (* The torn prefix must reach the OS before the process dies,
               or there would be nothing torn to recover from. *)
            partial_write oc s (budget - !written);
            Atomic.incr fired_count;
            Unix.kill (Unix.getpid ()) Sys.sigkill
          end
        | Some (Rename_fails | Fsync_fails) -> Stdlib.output_string oc s)

(* Flip one bit of an object's in-memory state behind the store API, the
   way a stray pointer or bad DIMM would.  Counts as a fired fault.  The
   scrubber's in-memory checksum pass is what must catch this. *)
let flip_string s =
  if String.length s = 0 then "\x01"
  else begin
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
    Bytes.unsafe_to_string b
  end

let corrupt_entry heap oid =
  let corrupted =
    match Heap.get heap oid with
    | Heap.Str s -> Heap.Str (flip_string s)
    | Heap.Record r -> Heap.Record { r with Heap.class_name = flip_string r.Heap.class_name }
    | Heap.Array a -> Heap.Array { a with Heap.elem_type = flip_string a.Heap.elem_type }
    | Heap.Weak c ->
      Heap.Weak
        {
          Heap.target =
            (match c.Heap.target with
            | Pvalue.Ref o -> Pvalue.Ref (Oid.of_int (Oid.to_int o + 1))
            | Pvalue.Null -> Pvalue.Ref (Oid.of_int 999983)
            | v -> v);
        }
  in
  Heap.remove heap oid;
  Heap.insert heap oid corrupted;
  Atomic.incr fired_count

let rename src dst =
  if not (Atomic.get armed_flag) then Sys.rename src dst
  else
    locked (fun () ->
        if not (in_scope_locked ()) then Sys.rename src dst
        else
        match !current with
        | Some Rename_fails -> fire_locked (Printf.sprintf "rename %s -> %s failed" src dst)
        | Some (Intr_storm n) -> storm_fire_locked "rename" n
        | _ -> Sys.rename src dst)

let fsync_channel oc =
  flush oc;
  let do_sync () = Unix.fsync (Unix.descr_of_out_channel oc) in
  if not (Atomic.get armed_flag) then do_sync ()
  else
    locked (fun () ->
        if not (in_scope_locked ()) then do_sync ()
        else
        match !current with
        | Some Fsync_fails -> fire_locked "fsync failed"
        | Some (Intr_storm n) -> storm_fire_locked "fsync" n
        | _ -> do_sync ())

let fsync_dir path =
  let do_sync () =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  in
  if not (Atomic.get armed_flag) then do_sync ()
  else
    locked (fun () ->
        if not (in_scope_locked ()) then do_sync ()
        else
        match !current with
        | Some Fsync_fails -> fire_locked "directory fsync failed"
        | Some (Intr_storm n) -> storm_fire_locked "fsync" n
        | _ -> do_sync ())
