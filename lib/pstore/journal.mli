(** The write-ahead journal behind incremental stabilisation.

    A journal extends exactly one image snapshot: its header records the
    image's checksum, and its body is a sequence of checksummed,
    length-prefixed mutation records.  [Store.stabilise] in journalled
    mode appends the mutations since the last stabilise and fsyncs —
    O(delta) instead of O(store) — and recovery replays the journal on top
    of the image, truncating at the first torn record.

    A journal whose header names a different image than the one on disk is
    stale (the store was compacted and the crash landed between the image
    rename and the journal reset); recovery discards it, which is safe
    because the newer image already contains every journalled effect. *)

type op =
  | Set_root of string * Pvalue.t
  | Remove_root of string
  | Alloc of Oid.t * Heap.entry
  | Set_field of Oid.t * int * Pvalue.t
  | Set_elem of Oid.t * int * Pvalue.t
  | Set_blob of string * string
  | Remove_blob of string

type t
(** An open journal writer. *)

val path_for : string -> string
(** The journal path paired with an image path ([<image>.wal]). *)

val header_size : int
(** Byte size of the journal header (magic + base checksum): the
    truncation floor when no record survives recovery. *)

val create : ?obs:Obs.t -> string -> base_crc:int32 -> t
(** Truncate [path] and write a fresh header naming the base image.
    [obs], when given, has its [Journal_append] counter bumped once per
    record appended. *)

val append : t -> op list -> unit
(** Append one record per op, in order.  Not durable until {!sync}. *)

val append_batch : ?seq:int -> t -> op list -> unit
(** Group commit: append the whole op list as ONE framed batch record
    (a single op keeps the plain per-op framing; the bytes are then
    identical to {!append}).  The frame checksum covers every op, so a
    crash mid-write tears the batch as a unit and recovery lands on the
    pre-batch state — never on a prefix of the delta.  {!depth} still
    advances by the number of ops.  Not durable until {!sync}.

    [seq], used by sharded stores, stamps the record with the store-level
    stabilise sequence number (always a tag-8 frame, even for one op);
    recovery replays a seq-stamped batch only if the store commit marker
    shows that sequence number as committed. *)

val sync : t -> unit
(** Fsync — the stabilise barrier. *)

val depth : t -> int
(** Records in the journal (replayed + appended since open). *)

val position : t -> int
(** Current end-of-journal byte offset: a savepoint for {!truncate_to}. *)

val truncate_to : t -> pos:int -> depth:int -> unit
(** Discard everything after a savepoint (transaction abort). *)

val close : t -> unit

val crash : t -> unit
(** Test support: close the descriptor {e without} flushing, losing any
    buffered bytes — exactly what a process crash does. *)

(** {1 Recovery} *)

(** One physical record, preserving batch boundaries and the optional
    stabilise sequence number (sharded recovery filters on it). *)
type batch = {
  b_seq : int option;
  b_ops : op list;
  b_end : int;  (** end byte offset of the record *)
}

type replay = {
  base_crc : int32;  (** checksum of the image this journal extends *)
  records : (op * int) list;
      (** good records in order, each with its end byte offset *)
  batches : batch list;  (** the same records with batch structure kept *)
  torn : bool;  (** a torn or corrupt tail was dropped *)
  valid_bytes : int;  (** end offset of the last good record *)
}

val read : string -> replay option
(** Parse a journal leniently: stop at the first torn record (bad length,
    short payload, checksum mismatch, undecodable body) rather than
    raising.  [None] if the file is missing or its header is unreadable. *)

val open_for_append : ?obs:Obs.t -> string -> valid_bytes:int -> depth:int -> t
(** Reopen an existing journal for appending, physically truncating any
    torn tail beyond [valid_bytes] first. *)

val copy_entry : Heap.entry -> Heap.entry
(** Deep-copy an entry's mutable parts.  [Alloc] ops must carry a copy:
    the live entry keeps mutating after the record is made. *)

val apply : op -> Heap.t -> Roots.t -> (string, string) Hashtbl.t -> unit
(** Replay one record.  [Alloc] inserts a fresh copy of the entry
    (replacing any live entry at that oid — duplicate replay after a
    failed-then-retried append must converge) and advances the heap's
    oid counter past the allocated oid. *)
