(* Top-level alias for the handle-first surface: [Pstore.Session] reads
   better at call sites than [Pstore.Store.Session].  Everything lives
   in [Store] (the session machinery is inseparable from the store
   internals); this module just re-exports it. *)

include Store.Session

let open_ = Store.open_session
let default = Store.default_session

let with_session store f =
  let s = Store.open_session store in
  match f s with
  | v ->
    if is_open s then commit s;
    v
  | exception e ->
    if is_open s then abort s;
    raise e
