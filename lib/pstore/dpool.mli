(** A tiny persistent worker pool over OCaml 5 stdlib domains.

    One process-wide pool backs every parallel maintenance pass in the
    store (sharded stabilise, scrub, GC mark).  Workers are spawned
    lazily, parked between jobs, and joined at process exit; the pool
    never exceeds [Domain.recommended_domain_count () - 1] workers (the
    calling domain participates) unless the limit is raised explicitly. *)

val run : int -> (int -> unit) -> unit
(** [run n f] executes [f 0 .. f (n-1)], in parallel when the pool has
    workers and sequentially otherwise (limit 1, nested call, or after
    {!shutdown}).  Returns when every task has finished.  If tasks
    raised, the first exception recorded is re-raised in the caller;
    the remaining tasks still run to completion.  Not reentrant: a task
    calling [run] gets the sequential fallback. *)

val parallelism : unit -> int
(** The effective pool limit: [PSTORE_DOMAINS] if set and >= 1, else
    [Domain.recommended_domain_count ()], unless {!set_limit} overrode
    it.  Total parallelism including the caller. *)

val set_limit : int -> unit
(** Override the pool limit (tests force > 1 to exercise true
    cross-domain interleavings on small machines).  Already-spawned
    workers are kept even if the limit shrinks below their count.
    @raise Invalid_argument if the limit is < 1. *)

val shutdown : unit -> unit
(** Stop and join all workers.  Registered via [at_exit]; subsequent
    {!run} calls fall back to sequential execution. *)
