(* A typed, heterogeneous property bag.  The store carries one so layers
   above it (the hyper-program registry, the dynamic compiler's cache)
   can attach per-store transient state — memo tables, fingerprints —
   without the store depending on their types.

   Keys use the classic existential-via-exception encoding: each key
   owns a private exception constructor, so injection and projection are
   type-safe without [Obj]. *)

type binding = exn

type 'a key = {
  uid : int;
  inj : 'a -> binding;
  prj : binding -> 'a option;
}

type t = (int, binding) Hashtbl.t

let next_uid = ref 0

let new_key (type a) () : a key =
  let module M = struct
    exception E of a
  end in
  incr next_uid;
  {
    uid = !next_uid;
    inj = (fun v -> M.E v);
    prj = (function M.E v -> Some v | _ -> None);
  }

let create () : t = Hashtbl.create 8

let set t key v = Hashtbl.replace t key.uid (key.inj v)

let find t key =
  match Hashtbl.find_opt t key.uid with
  | None -> None
  | Some b -> key.prj b

let remove t key = Hashtbl.remove t key.uid

(* Get the binding, creating it with [make] on first access. *)
let get_or_create t key make =
  match find t key with
  | Some v -> v
  | None ->
    let v = make () in
    set t key v;
    v
