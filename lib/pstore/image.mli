(** Stabilisation: whole-store snapshots.

    The heap, named roots and blob table are serialised into a single
    checksummed image and written atomically.  Oids are preserved, so
    hyper-links (which capture oids) survive a close/reopen cycle. *)

exception Image_error of string

type contents = {
  heap : Heap.t;
  roots : Roots.t;
  blobs : (string, string) Hashtbl.t;
      (** named byte strings for non-object state, e.g. compiled class files *)
}

val encode : contents -> string
(** Serialise to bytes (deterministic: entries sorted by oid). *)

val decode : string -> contents
(** @raise Image_error on checksum mismatch, bad magic or truncation.
    @raise Codec.Decode_error on malformed payloads. *)

val encode_entry : Codec.writer -> Heap.entry -> unit
(** The per-object wire format, shared with the write-ahead journal. *)

val decode_entry : Codec.reader -> Heap.entry

val save : ?durable:bool -> string -> contents -> int32
(** Crash-atomic write (temp file, fsync, rename, directory fsync) through
    the {!Faults} layer.  Returns the image's checksum, which names this
    snapshot for journal pairing.  [?durable:false] skips the fsyncs. *)

val load_with_crc : string -> contents * int32
(** Like {!load}, also returning the image checksum. *)

val load : string -> contents
