(** Stabilisation: whole-store snapshots.

    The heap, named roots, blob table and quarantine set are serialised
    into a single image and written atomically.  Oids are preserved, so
    hyper-links (which capture oids) survive a close/reopen cycle.

    Format v2 checksums every object individually ({!Codec.put_frame}
    framing, shared with the write-ahead journal), so a corrupt image can
    be {e salvaged}: objects whose frames fail their checksum are
    quarantined and everything else loads. *)

exception Image_error of string

type contents = {
  heap : Heap.t;
  roots : Roots.t;
  blobs : (string, string) Hashtbl.t;
      (** named byte strings for non-object state, e.g. compiled class files *)
  quarantine : Quarantine.t;
      (** oids whose objects are known-corrupt, persisted across reopen *)
}

val encode : contents -> string
(** Serialise to bytes (deterministic: entries sorted by oid). *)

val decode : string -> contents
(** Decode an image.  If the whole-image checksum fails, a salvage pass
    loads every entry whose own frame still verifies and quarantines the
    corrupt ones; salvage is accepted only when at least one corrupt
    entry frame is found and the tail section verifies.
    @raise Image_error on bad magic, truncation, or unsalvageable
    corruption.
    @raise Codec.Decode_error on malformed payloads in a checksum-clean
    image. *)

val encode_entry : Codec.writer -> Heap.entry -> unit
(** The per-object wire format — a checksummed frame — shared with the
    write-ahead journal. *)

val decode_entry : Codec.reader -> Heap.entry
(** @raise Codec.Decode_error on truncation or checksum mismatch. *)

val encode_entry_payload : Heap.entry -> string
(** The raw (unframed) per-object encoding, over which {!entry_crc} is
    computed. *)

val decode_entry_payload : string -> Heap.entry

val entry_crc : Heap.entry -> int32
(** The per-object checksum: CRC-32 of the entry's encoded payload.  This
    is what the image frames store and the online scrubber recomputes. *)

val save : ?durable:bool -> ?obs:Obs.t -> string -> contents -> int32
(** Crash-atomic write (temp file, fsync, rename, directory fsync) through
    the {!Faults} layer.  Returns the image's checksum, which names this
    snapshot for journal pairing.  [?durable:false] skips the fsyncs.
    [obs], when given, records the write as an [Image_save] span with the
    encoded byte count. *)

val load_with_crc : ?obs:Obs.t -> string -> contents * int32
(** Like {!load}, also returning the image checksum.  [obs] records the
    read as an [Image_load] span. *)

type load_report = {
  lr_contents : contents;
  lr_crc : int32;
  lr_salvaged : int;
      (** entries the decoder quarantined around during this load (0 on
          a checksum-clean image).  The sharded open uses the count to
          demote a shard whose image needed salvage-heavy recovery. *)
}

val load_report : ?obs:Obs.t -> string -> load_report
(** Like {!load_with_crc}, also reporting the salvage count. *)

val load : string -> contents

val slice :
  keep_oid:(Oid.t -> bool) -> keep_key:(string -> bool) -> contents -> contents
(** One shard's view of whole-store contents: heap entries and
    quarantined oids selected by [keep_oid], roots and blobs by
    [keep_key].  Entries are shared by reference (the slice is a
    transient save input); [next_oid] carries the global counter. *)
