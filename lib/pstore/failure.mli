(** The unified typed failure for salvage reads.

    Every [try_]-style accessor in the store stack — {!Store.try_get},
    {!Store.try_field}, and the registry's [try_get_link] above — returns
    [('a, Failure.t) result] with this one variant, so callers render
    broken-link placeholders with a single match instead of juggling
    per-module error shapes. *)

type t =
  | Quarantined of {
      oid : Oid.t;
      reason : string;
    }  (** the object is in the quarantine set (corrupt or undecodable) *)
  | Dangling of Oid.t  (** the oid has no live heap entry *)
  | Collected of int
      (** a registry uid whose weakly-held program was garbage collected *)
  | Bad_index of {
      container : string;  (** human description, e.g. ["hyper-program 3"] *)
      index : int;
    }  (** an index with no entry in an otherwise healthy container *)

exception Shard_degraded of {
  shard : int;
  state : string;  (** ["degraded"] or ["offline"] *)
  reason : string;
}
(** A write was routed to a shard that is not healthy.  The shard is
    read-only until [Store.repair] promotes it; every other shard keeps
    full service.  Raised by the mutating store operations
    ([set_field], [set_root], [alloc_*], ...) and by [stabilise] when a
    structurally-required full compaction cannot proceed while a shard
    is down. *)

exception Commit_conflict of {
  session : int;  (** the losing session's id *)
  oids : Oid.t list;  (** clashing object ids, ascending *)
  keys : string list;  (** clashing root/blob names, sorted *)
}
(** Raised by [Store.Session.commit] when first-committer-wins conflict
    detection finds that part of this session's write set was committed
    by someone else after the session's snapshot was pinned.  The losing
    session is aborted before the raise — none of its buffered writes
    reached the heap or the journal — so the caller retries by opening a
    fresh session and re-applying its intent against the new state. *)

val pp : Format.formatter -> t -> unit

val describe : t -> string
(** One-line human rendering, e.g.
    ["quarantined @7: checksum mismatch"]. *)
