(** Per-shard health tracking: the fault-domain state machine.

    Each shard of a sharded store carries one tracker.  Repeated
    exhausted transient I/O failures (the circuit breaker) or a
    salvage-heavy image load demote a shard to [Degraded]; an image that
    cannot be read at open marks it [Offline].  A shard that is not
    [Healthy] is read-only — reads serve from memory, writes raise the
    typed {!Failure.Shard_degraded} — until [Store.repair] promotes it
    back.

    State transitions happen on the calling domain only; the counters
    are atomics because stabilise and scrub bump them from pool
    domains. *)

type state =
  | Healthy
  | Degraded of string  (** read-only; in-memory state intact *)
  | Offline of string  (** read-only; durable state was unreadable at open *)

type t

val create : unit -> t
(** A fresh tracker, [Healthy]. *)

val state : t -> state
val healthy : t -> bool

val state_name : state -> string
(** ["healthy"], ["degraded"] or ["offline"] (no reason). *)

val describe : state -> string
(** One-line rendering including the reason. *)

val degrade : t -> string -> unit
(** [Healthy -> Degraded reason]; no-op on an already-demoted shard (an
    offline shard never regresses to merely degraded). *)

val offline : t -> string -> unit
(** [Healthy/Degraded -> Offline reason]. *)

val promote : t -> unit
(** Back to [Healthy]; resets the consecutive-failure count and counts a
    repair if the shard was demoted. *)

(** {1 Failure accounting} — safe from pool domains. *)

val note_failure : t -> unit
(** One exhausted transient I/O failure on this shard. *)

val note_ok : t -> unit
(** Successful shard I/O: resets the consecutive-failure count. *)

val note_degraded_read : t -> unit
val note_refused_write : t -> unit

val failures : t -> int
(** Consecutive exhausted transient failures since the last success. *)

val trips : t -> int
(** Demotions (circuit-breaker trips + open-time demotions) so far. *)

val degraded_reads : t -> int
val refused_writes : t -> int
val repairs : t -> int
