(* Store observability: per-store monotonic counters (always on, one
   array increment per operation), latency histograms and a bounded
   trace ring (both gated by the tracing switch, so the disabled path
   never reads a clock).

   Latencies are kept as a bounded reservoir of recent samples per
   operation class rather than fixed buckets: percentiles are computed
   on demand by sorting a copy, which is plenty for a diagnostics path
   and keeps recording to one array store. *)

type op =
  | Get
  | Set
  | Alloc
  | Root_lookup
  | Stabilise
  | Journal_append
  | Compaction
  | Image_save
  | Image_load
  | Scrub_step
  | Retry
  | Quarantine_hit
  | Gc
  | Get_link
  | Compile
  | Transaction
  | Cache_hit
  | Cache_miss
  | Group_commit
  | Repair
  | Degraded_op
  | Session_commit
  | Conflict
  | Net_request
  | Net_error

let all_ops =
  [
    Get; Set; Alloc; Root_lookup; Stabilise; Journal_append; Compaction;
    Image_save; Image_load; Scrub_step; Retry; Quarantine_hit; Gc; Get_link;
    Compile; Transaction; Cache_hit; Cache_miss; Group_commit; Repair;
    Degraded_op; Session_commit; Conflict; Net_request; Net_error;
  ]

let op_index = function
  | Get -> 0
  | Set -> 1
  | Alloc -> 2
  | Root_lookup -> 3
  | Stabilise -> 4
  | Journal_append -> 5
  | Compaction -> 6
  | Image_save -> 7
  | Image_load -> 8
  | Scrub_step -> 9
  | Retry -> 10
  | Quarantine_hit -> 11
  | Gc -> 12
  | Get_link -> 13
  | Compile -> 14
  | Transaction -> 15
  | Cache_hit -> 16
  | Cache_miss -> 17
  | Group_commit -> 18
  | Repair -> 19
  | Degraded_op -> 20
  | Session_commit -> 21
  | Conflict -> 22
  | Net_request -> 23
  | Net_error -> 24

let n_ops = List.length all_ops

let op_name = function
  | Get -> "get"
  | Set -> "set"
  | Alloc -> "alloc"
  | Root_lookup -> "root-lookup"
  | Stabilise -> "stabilise"
  | Journal_append -> "journal-append"
  | Compaction -> "compaction"
  | Image_save -> "image-save"
  | Image_load -> "image-load"
  | Scrub_step -> "scrub-step"
  | Retry -> "retry"
  | Quarantine_hit -> "quarantine-hit"
  | Gc -> "gc"
  | Get_link -> "get-link"
  | Compile -> "compile"
  | Transaction -> "transaction"
  | Cache_hit -> "cache-hit"
  | Cache_miss -> "cache-miss"
  | Group_commit -> "group-commit"
  | Repair -> "repair"
  | Degraded_op -> "degraded-op"
  | Session_commit -> "session-commit"
  | Conflict -> "conflict"
  | Net_request -> "net-request"
  | Net_error -> "net-error"

type event = {
  seq : int;
  ev_op : op;
  label : string;
  oid : Oid.t option;
  bytes : int;
  duration_ns : float;
}

let pp_event ppf e =
  Format.fprintf ppf "#%d %-14s %8.0fns" e.seq (op_name e.ev_op) e.duration_ns;
  (match e.oid with Some oid -> Format.fprintf ppf " %a" Oid.pp oid | None -> ());
  if e.bytes > 0 then Format.fprintf ppf " %dB" e.bytes;
  if e.label <> "" then Format.fprintf ppf " %s" e.label

type latency = {
  timed : int;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
}

type snapshot = {
  at_total : int;
  final_counts : (op * int) list;
}

(* Bounded reservoir of the most recent durations for one op class. *)
type hist = {
  samples : float array;
  mutable filled : int;  (* valid samples, <= Array.length samples *)
  mutable next : int;  (* ring write position *)
  mutable timed : int;  (* total spans timed *)
  mutable max_ns : float;
}

let hist_capacity = 512

type t = {
  counters : int Atomic.t array;
      (* atomics, not plain ints: shard counters are bumped from pool
         domains during parallel stabilise/scrub/gc *)
  hists : hist array;
  mutable ring : event array;  (* dummy-filled; [ring_len] entries valid *)
  mutable ring_len : int;
  mutable ring_next : int;
  mutable seq : int;
  mutable tracing : bool;
  mutable final : snapshot option;
}

let default_ring_capacity = 256

let dummy_event =
  { seq = 0; ev_op = Get; label = ""; oid = None; bytes = 0; duration_ns = 0. }

let fresh_hist () =
  { samples = Array.make hist_capacity 0.; filled = 0; next = 0; timed = 0; max_ns = 0. }

let create ?(ring_capacity = default_ring_capacity) () =
  if ring_capacity < 0 then invalid_arg "Obs.create: negative ring capacity";
  {
    counters = Array.init n_ops (fun _ -> Atomic.make 0);
    hists = Array.init n_ops (fun _ -> fresh_hist ());
    ring = Array.make ring_capacity dummy_event;
    ring_len = 0;
    ring_next = 0;
    seq = 0;
    tracing = false;
    final = None;
  }

let enabled t = t.tracing
let set_enabled t on = t.tracing <- on

let ring_capacity t = Array.length t.ring

let set_ring_capacity t n =
  if n < 0 then invalid_arg "Obs.set_ring_capacity: negative";
  t.ring <- Array.make n dummy_event;
  t.ring_len <- 0;
  t.ring_next <- 0

(* -- recording ------------------------------------------------------------ *)

let incr t op = Atomic.incr (Array.unsafe_get t.counters (op_index op))
let add t op n = ignore (Atomic.fetch_and_add t.counters.(op_index op) n)

let now_ns () = Unix.gettimeofday () *. 1e9

let push_event t ev =
  let cap = Array.length t.ring in
  if cap > 0 then begin
    t.ring.(t.ring_next) <- ev;
    t.ring_next <- (t.ring_next + 1) mod cap;
    if t.ring_len < cap then t.ring_len <- t.ring_len + 1
  end

let record t op ?oid ?(bytes = 0) ?(label = "") dur_ns =
  if t.tracing then begin
    let h = t.hists.(op_index op) in
    h.samples.(h.next) <- dur_ns;
    h.next <- (h.next + 1) mod Array.length h.samples;
    if h.filled < Array.length h.samples then h.filled <- h.filled + 1;
    h.timed <- h.timed + 1;
    if dur_ns > h.max_ns then h.max_ns <- dur_ns;
    t.seq <- t.seq + 1;
    push_event t { seq = t.seq; ev_op = op; label; oid; bytes; duration_ns = dur_ns }
  end

let span t op ?oid ?bytes ?label f =
  incr t op;
  if not t.tracing then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | v ->
      record t op ?oid ?bytes ?label (now_ns () -. t0);
      v
    | exception e ->
      record t op ?oid ?bytes ?label (now_ns () -. t0);
      raise e
  end

(* -- reading -------------------------------------------------------------- *)

let count t op = Atomic.get t.counters.(op_index op)

let counts t =
  List.filter_map
    (fun op ->
      let n = count t op in
      if n > 0 then Some (op, n) else None)
    all_ops

let total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counters

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let latency t op =
  let h = t.hists.(op_index op) in
  if h.timed = 0 then None
  else begin
    let sorted = Array.sub h.samples 0 h.filled in
    Array.sort compare sorted;
    Some
      {
        timed = h.timed;
        p50_ns = percentile sorted 0.50;
        p99_ns = percentile sorted 0.99;
        max_ns = h.max_ns;
      }
  end

let events t =
  let cap = Array.length t.ring in
  List.init t.ring_len (fun i ->
      t.ring.((t.ring_next - t.ring_len + i + (2 * cap)) mod cap))

let clear_events t =
  t.ring_len <- 0;
  t.ring_next <- 0

(* -- lifecycle ------------------------------------------------------------ *)

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counters;
  Array.iteri (fun i _ -> t.hists.(i) <- fresh_hist ()) t.hists;
  clear_events t;
  t.seq <- 0;
  t.final <- None

let flush t =
  t.final <- Some { at_total = total t; final_counts = counts t };
  clear_events t;
  t.tracing <- false

let drop t =
  clear_events t;
  t.tracing <- false

let final_snapshot t = t.final
