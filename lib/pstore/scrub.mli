(** The online scrubber: incremental, budgeted verification of per-object
    checksums and reference health.

    Checksums are trust-on-first-scan: mutations invalidate an object's
    recorded CRC, the scrubber re-primes it on its next visit, and a
    mismatch on a {e still-recorded} CRC means the object changed behind
    the store's back — memory corruption — so the object is quarantined.
    Dangling strong (and weak) reference targets are quarantined too, so
    reads of the hole get a typed error instead of a crash. *)

type state

type report = {
  scanned : int;  (** objects visited by this step *)
  verified : int;  (** recorded CRCs that matched *)
  primed : int;  (** CRCs recorded for the first time (or re-recorded) *)
  newly_quarantined : (Oid.t * string) list;
  pass_complete : bool;  (** this step drained the current pass *)
}

val create : unit -> state

val step :
  state ->
  heap:Heap.t ->
  crcs:int32 Oid.Table.t ->
  quarantine:Quarantine.t ->
  ?reseed:(unit -> Oid.t list) ->
  ?foreign:(Oid.t -> bool) ->
  budget:int ->
  unit ->
  report
(** Scan at most [budget] objects, resuming where the previous step
    stopped; when the queue is empty a fresh pass is started from a fresh
    snapshot of the heap's oids ([reseed], when given, supplies that
    snapshot — sharded stores seed each shard's scrubber with only its
    own oids).

    [foreign] marks oids owned by another shard: a dangling reference
    whose target is foreign is only {e reported} in [newly_quarantined]
    (never written into [quarantine]/[crcs], which would race with the
    owning shard's scrubber running in parallel); the store applies those
    quarantines on the owning shard after the parallel step.
    @raise Invalid_argument if [budget <= 0]. *)

val passes : state -> int
(** Completed full passes. *)

val pending : state -> int
(** Oids left in the current pass. *)

val pp_progress : Format.formatter -> state -> unit
