(* Referential-integrity checking.  The paper's store contract is "roots,
   reachability and referential integrity": no reachable object may contain
   a dangling reference.  We verify the whole heap (not just the reachable
   part) so that corruption is caught as early as possible.

   Quarantine-awareness: references INTO the quarantine are reported as
   their own (non-fatal) violation kind — the degradation has already been
   surfaced, and readers get a typed error rather than a crash — while the
   contents of quarantined holders are skipped entirely, since corrupt
   data proves nothing about the rest of the store. *)

type violation =
  | Dangling_ref of { holder : Oid.t option; slot : string; target : Oid.t }
  | Bad_root of { name : string; target : Oid.t }
  | Bad_weak_target of { holder : Oid.t; target : Oid.t }
  | Quarantined_ref of { holder : Oid.t option; slot : string; target : Oid.t }
  | Bad_blob_anchor of { key : string; target : Oid.t }

let pp_holder ppf = function
  | Some oid -> Oid.pp ppf oid
  | None -> Format.pp_print_string ppf "<root>"

let pp_violation ppf = function
  | Dangling_ref { holder; slot; target } ->
    Format.fprintf ppf "dangling reference: %a.%s -> %a" pp_holder holder slot Oid.pp target
  | Bad_root { name; target } ->
    Format.fprintf ppf "root %S -> dangling %a" name Oid.pp target
  | Bad_weak_target { holder; target } ->
    Format.fprintf ppf "weak cell %a -> dangling %a" Oid.pp holder Oid.pp target
  | Quarantined_ref { holder; slot; target } ->
    Format.fprintf ppf "reference into quarantine: %a.%s -> %a" pp_holder holder slot Oid.pp
      target
  | Bad_blob_anchor { key; target } ->
    Format.fprintf ppf "blob anchor %S -> dangling %a" key Oid.pp target

(* Quarantined references are non-fatal: the degradation is already
   surfaced through typed read errors. *)
let fatal = function
  | Quarantined_ref _ -> false
  | Dangling_ref _ | Bad_root _ | Bad_weak_target _ | Bad_blob_anchor _ -> true

let check ?(anchors = []) store =
  let heap = Store.heap store in
  let violations = ref [] in
  let classify ~holder ~slot target =
    if Store.is_quarantined store target then
      violations := Quarantined_ref { holder; slot; target } :: !violations
    else if not (Heap.is_live heap target) then
      violations :=
        (match holder with
        | Some h when String.equal slot "weak-target" ->
          Bad_weak_target { holder = h; target }
        | _ -> Dangling_ref { holder; slot; target })
        :: !violations
  in
  let check_values holder values =
    Array.iteri
      (fun i v ->
        match v with
        | Pvalue.Ref target -> classify ~holder:(Some holder) ~slot:(string_of_int i) target
        | _ -> ())
      values
  in
  Heap.iter
    (fun oid entry ->
      if not (Store.is_quarantined store oid) then begin
        match entry with
        | Heap.Record r -> check_values oid r.Heap.fields
        | Heap.Array a -> check_values oid a.Heap.elems
        | Heap.Weak cell -> begin
          (* A weak target may be cleared (Null) but must never dangle:
             GC clears weak cells in the same pass that sweeps their
             targets, so a dangling weak target means corruption. *)
          match cell.Heap.target with
          | Pvalue.Ref target -> classify ~holder:(Some oid) ~slot:"weak-target" target
          | _ -> ()
        end
        | Heap.Str _ -> ()
      end)
    heap;
  Roots.iter
    (fun name v ->
      match v with
      | Pvalue.Ref target ->
        if Store.is_quarantined store target then
          violations :=
            Quarantined_ref { holder = None; slot = "root:" ^ name; target } :: !violations
        else if not (Heap.is_live heap target) then
          violations := Bad_root { name; target } :: !violations
      | _ -> ())
    (Store.roots store);
  (* Blob anchors: higher layers keep oid-valued pointers in the blob
     table (e.g. the registry's hyper.origin:* records); a dead anchor is
     as much a violation as a dangling root. *)
  List.iter
    (fun (key, target) ->
      if Store.is_quarantined store target then
        violations :=
          Quarantined_ref { holder = None; slot = "blob:" ^ key; target } :: !violations
      else if not (Heap.is_live heap target) then
        violations := Bad_blob_anchor { key; target } :: !violations)
    anchors;
  List.rev !violations

let check_exn ?anchors store =
  match List.filter fatal (check ?anchors store) with
  | [] -> ()
  | violations ->
    let msg =
      Format.asprintf "@[<v>%a@]" (Format.pp_print_list pp_violation) violations
    in
    raise (Heap.Heap_error ("integrity violation:\n" ^ msg))
