(** Bounded retry with full-jitter exponential backoff for transient I/O
    failures.

    Retries only exceptions that plausibly denote a transient
    environmental failure: {!Faults.Fault_injected}, [Sys_error] and
    [Unix.Unix_error].  Everything else propagates immediately.

    Domain-safe: stats are atomics and the label table is mutex-guarded,
    so sharded stores may retry from pool domains. *)

type policy = {
  retries : int;  (** extra attempts after the first failure *)
  base_delay : float;  (** seconds; doubles each retry (before jitter) *)
  max_delay : float;  (** backoff cap in seconds *)
  jitter : bool;
      (** full jitter: each delay is drawn uniformly from [0, capped
          backoff] instead of sleeping the full capped value, so
          concurrent retriers decorrelate *)
  deadline : float;
      (** wall-clock budget in seconds for the whole run (attempts plus
          sleeps); once elapsed + next delay would cross it the budget
          counts as exhausted.  [infinity] = attempts-only bound *)
}

val default_policy : policy
(** 3 retries, 1ms base delay, 50ms cap, jittered, 1s deadline. *)

(** {1 I/O classes}

    The store threads retry through every I/O class below; a per-class
    policy override (see [Store.Config.retry_overrides]) tunes one class
    without touching the rest. *)

type io_class =
  | Stabilise  (** the whole stabilise attempt (outermost wrapper) *)
  | Image_load
  | Image_save
  | Journal_append
  | Journal_replay
  | Marker  (** commit-marker append + fsync *)
  | Scrub
  | Compaction

val class_name : io_class -> string
val all_classes : io_class list

type stats = {
  attempts : int;
  retries : int;
  absorbed : int;  (** operations that failed then eventually succeeded *)
  exhausted : int;  (** operations that failed even after all retries *)
}

val stats : unit -> stats
(** Process-wide counters since start (or the last {!reset_stats}). *)

val reset_stats : unit -> unit

val counters : unit -> (string * int) list
(** Retries per operation label, sorted, for health displays. *)

val transient : exn -> bool

val run :
  ?policy:policy ->
  ?on_retry:(int -> exn -> unit) ->
  ?on_exhausted:(exn -> unit) ->
  ?obs:Obs.t ->
  label:string ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying transient failures up to [policy.retries] times
    (within [policy.deadline]) with full-jitter exponential backoff.

    [on_retry] is called before each retry with the attempt number and
    the exception — use it to restore idempotency (truncate a journal
    back to its savepoint) before the next attempt; exceptions it raises
    are swallowed, never fatal.  [on_exhausted] is called once when a
    transient failure exhausts the budget (the store's circuit breaker
    hooks shard demotion here); its exceptions are swallowed too.
    [obs], when given, has its [Retry] counter bumped per retry.  The
    final failure is re-raised. *)
