(** Bounded retry with exponential backoff for transient I/O failures.

    Retries only exceptions that plausibly denote a transient
    environmental failure: {!Faults.Fault_injected}, [Sys_error] and
    [Unix.Unix_error].  Everything else propagates immediately. *)

type policy = {
  retries : int;  (** extra attempts after the first failure *)
  base_delay : float;  (** seconds before the first retry; doubles each time *)
  max_delay : float;  (** backoff cap in seconds *)
}

val default_policy : policy
(** 3 retries, 1ms base delay, 50ms cap. *)

type stats = {
  attempts : int;
  retries : int;
  absorbed : int;  (** operations that failed then eventually succeeded *)
  exhausted : int;  (** operations that failed even after all retries *)
}

val stats : unit -> stats
(** Process-wide counters since start (or the last {!reset_stats}). *)

val reset_stats : unit -> unit

val counters : unit -> (string * int) list
(** Retries per operation label, sorted, for health displays. *)

val transient : exn -> bool

val run :
  ?policy:policy ->
  ?on_retry:(int -> exn -> unit) ->
  ?obs:Obs.t ->
  label:string ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying transient failures up to [policy.retries] times
    with exponential backoff.  [on_retry] is called before each retry
    with the attempt number and the exception; [obs], when given, has its
    [Retry] counter bumped per retry.  The final failure is re-raised. *)
