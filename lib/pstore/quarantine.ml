(* The quarantine set: oids whose objects are known-corrupt or whose
   storage could not be decoded.  Quarantined objects are isolated, not
   fatal — reads raise the typed {!Quarantined} exception (or return it
   through the [try_]-style accessors) so callers can degrade gracefully,
   and every other object in the store stays readable.

   A quarantined oid may still have a heap entry (in-memory corruption
   detected by the scrubber keeps the suspect entry around for forensics)
   or may have none at all (an image-load salvage drops the undecodable
   payload and records only the oid and reason). *)

exception Quarantined of Oid.t * string

type t = string Oid.Table.t

let create () : t = Oid.Table.create 8

let add t oid reason = Oid.Table.replace t oid reason
let remove t oid = Oid.Table.remove t oid
let find t oid = Oid.Table.find_opt t oid
let mem t oid = Oid.Table.mem t oid
let size t = Oid.Table.length t
let is_empty t = Oid.Table.length t = 0

let check t oid =
  match Oid.Table.find_opt t oid with
  | Some reason -> raise (Quarantined (oid, reason))
  | None -> ()

(* Sorted for deterministic display and serialisation. *)
let to_list t =
  Oid.Table.fold (fun oid reason acc -> (oid, reason) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)

let replace_all t ~from =
  Oid.Table.reset t;
  Oid.Table.iter (Oid.Table.replace t) from
