(* Reachability-based garbage collection with weak-reference semantics.

   Mark phase: trace strong references from the root seed (named roots plus
   any extra pins supplied by the runtime, e.g. VM stack frames or static
   fields).  Weak cells are traced as objects but their targets are not.

   Weak phase: any live weak cell whose target died is cleared to Null —
   this is what lets the Figure 7 registry release hyper-programs once no
   user references remain.

   Sweep phase: dead entries are removed from the heap. *)

type stats = {
  live : int;
  swept : int;
  weak_cleared : int;
}

let pp_stats ppf { live; swept; weak_cleared } =
  Format.fprintf ppf "live=%d swept=%d weak_cleared=%d" live swept weak_cleared

(* Iterative marking with an explicit work list: store graphs can be
   arbitrarily deep (a million-element linked list is ordinary data), so
   recursion over the object graph would overflow the OCaml stack. *)
let mark heap seed =
  let marked = Oid.Table.create 1024 in
  let work = Stack.create () in
  let push oid =
    if (not (Oid.Table.mem marked oid)) && Heap.is_live heap oid then begin
      Oid.Table.replace marked oid ();
      Stack.push oid work
    end
  in
  List.iter push seed;
  while not (Stack.is_empty work) do
    let oid = Stack.pop work in
    List.iter push (Heap.strong_refs (Heap.get heap oid))
  done;
  marked

let collect ?(extra_roots = []) heap roots =
  let seed = List.rev_append extra_roots (Roots.ref_oids roots) in
  let marked = mark heap seed in
  (* Clear weak cells whose target is about to be swept. *)
  let weak_cleared = ref 0 in
  Heap.iter
    (fun oid entry ->
      match entry with
      | Heap.Weak cell when Oid.Table.mem marked oid -> begin
        match cell.Heap.target with
        | Pvalue.Ref target when not (Oid.Table.mem marked target) ->
          cell.Heap.target <- Pvalue.Null;
          incr weak_cleared
        | _ -> ()
      end
      | Heap.Weak _ | Heap.Record _ | Heap.Array _ | Heap.Str _ -> ())
    heap;
  let dead = ref [] in
  Heap.iter (fun oid _ -> if not (Oid.Table.mem marked oid) then dead := oid :: !dead) heap;
  List.iter (Heap.remove heap) !dead;
  { live = Heap.size heap; swept = List.length !dead; weak_cleared = !weak_cleared }

let reachable ?(extra_roots = []) heap roots =
  let seed = List.rev_append extra_roots (Roots.ref_oids roots) in
  let marked = mark heap seed in
  Oid.Table.fold (fun oid () acc -> Oid.Set.add oid acc) marked Oid.Set.empty

(* Sharded mark: each shard marks the closure of its own objects in
   parallel, exporting references that cross a shard boundary to the
   owning shard's outbox; rounds repeat on the main domain until no
   outbox delivers a new oid.  Domains only write their own marked table
   and outbox row, and the heap is read-only throughout, so the phase is
   race-free by partition.  The delivered cross-shard targets double as
   the per-shard remembered sets (live incoming references), which is
   what keeps the sweep itself per-shard.  Weak-clear and sweep run on
   the main domain: both mutate the shared heap, and each is one cheap
   linear pass. *)
let collect_sharded ~nshards ~shard_of ?(extra_roots = []) heap roots =
  let marked = Array.init nshards (fun _ -> Oid.Table.create 256) in
  let remembered = Array.make nshards Oid.Set.empty in
  let inbox = Array.make nshards [] in
  let seed = List.rev_append extra_roots (Roots.ref_oids roots) in
  List.iter
    (fun oid ->
      let s = shard_of oid in
      inbox.(s) <- oid :: inbox.(s))
    seed;
  let outbox = Array.init nshards (fun _ -> Array.make nshards []) in
  let pending = ref (seed <> []) in
  while !pending do
    Dpool.run nshards (fun k ->
        let mk = marked.(k) in
        let out = outbox.(k) in
        let work = Stack.create () in
        let push oid =
          let s = shard_of oid in
          if s = k then begin
            if (not (Oid.Table.mem mk oid)) && Heap.is_live heap oid then begin
              Oid.Table.replace mk oid ();
              Stack.push oid work
            end
          end
          else out.(s) <- oid :: out.(s)
        in
        List.iter push inbox.(k);
        while not (Stack.is_empty work) do
          let oid = Stack.pop work in
          List.iter push (Heap.strong_refs (Heap.get heap oid))
        done);
    (* merge outboxes into next-round inboxes on the main domain *)
    Array.fill inbox 0 nshards [];
    pending := false;
    for src = 0 to nshards - 1 do
      for dst = 0 to nshards - 1 do
        List.iter
          (fun oid ->
            if Heap.is_live heap oid then begin
              remembered.(dst) <- Oid.Set.add oid remembered.(dst);
              if not (Oid.Table.mem marked.(dst) oid) then begin
                inbox.(dst) <- oid :: inbox.(dst);
                pending := true
              end
            end)
          outbox.(src).(dst);
        outbox.(src).(dst) <- []
      done
    done
  done;
  let is_marked oid = Oid.Table.mem marked.(shard_of oid) oid in
  let weak_cleared = ref 0 in
  Heap.iter
    (fun oid entry ->
      match entry with
      | Heap.Weak cell when is_marked oid -> begin
        match cell.Heap.target with
        | Pvalue.Ref target when not (is_marked target) ->
          cell.Heap.target <- Pvalue.Null;
          incr weak_cleared
        | _ -> ()
      end
      | Heap.Weak _ | Heap.Record _ | Heap.Array _ | Heap.Str _ -> ())
    heap;
  let dead = ref [] in
  Heap.iter (fun oid _ -> if not (is_marked oid) then dead := oid :: !dead) heap;
  List.iter (Heap.remove heap) !dead;
  ( { live = Heap.size heap; swept = List.length !dead; weak_cleared = !weak_cleared },
    remembered )
