(** A typed, heterogeneous property bag.

    Each store carries one ({!Store.props}) so layers above the store
    can attach per-store transient state — memo tables, cached
    fingerprints — without the store depending on their types.  Bindings
    are in-memory only: they are never stabilised, and a reopened store
    starts with an empty bag. *)

type t

type 'a key

val new_key : unit -> 'a key
(** A fresh key.  Keys are usually created once at module toplevel. *)

val create : unit -> t
val set : t -> 'a key -> 'a -> unit
val find : t -> 'a key -> 'a option
val remove : t -> 'a key -> unit

val get_or_create : t -> 'a key -> (unit -> 'a) -> 'a
(** The binding for a key, created (and remembered) on first access. *)
