(* The store facade: a heap, named roots, and a blob table, with
   stabilisation to a backing file.  This plays the role PJama plays in the
   paper: the environment in which programs are composed, stored and
   executed.

   The store is also where higher layers register "pins": transient strong
   roots contributed by a running VM (static fields, stack frames) that the
   garbage collector must honour even though they are not named roots.

   Durability comes in two modes.  [Snapshot] (the default) rewrites the
   whole image on every stabilise.  [Journalled] pairs the image with a
   write-ahead journal: mutations made through this module are buffered as
   journal ops, stabilise appends and fsyncs just the delta, and the image
   is rewritten only at compaction points (first stabilise, journal over
   the compaction limit, or after operations the journal cannot express —
   a GC sweep, or direct heap surgery flagged via [mark_dirty]).

   The object space is partitioned into N shards (N fixed at creation,
   persisted in the store manifest).  Each shard owns an oid-hash slice of
   the objects plus the key-hashed roots and blobs, and carries its own
   image file, journal, quarantine set, checksum table, scrub cursor and
   counters, so stabilise, scrub and GC mark can run shard-wise on the
   domain pool.  N = 1 — the default — keeps the legacy flat single-file
   layout, byte for byte.

   Multi-shard journalled crash atomicity: every stabilise gets a
   store-level sequence number; the delta lands as one seq-stamped batch
   record per dirty shard, and the sequence number is committed by
   appending it to the store's commit-marker file only after every dirty
   shard journal has been fsynced.  Recovery replays, per shard, exactly
   the batches whose sequence number the marker shows committed — so a
   crash between per-shard writes rolls the whole stabilise back, never
   half of it.

   Every operation is counted through the store's [Obs.t].  Counting is a
   single array increment; latency timing and trace events only happen
   when tracing is enabled, so the hot accessors below branch on
   [Obs.enabled] explicitly rather than paying a closure on the untraced
   path. *)

type durability =
  | Snapshot
  | Journalled

(* Per-shard state.  The [sobs] counters are bumped from pool domains
   (counters are atomic; tracing is never enabled on a shard Obs) and
   delta-merged into the store-level [obs] after each parallel section. *)
type shard = {
  sq : Quarantine.t; (* corrupt objects, isolated not fatal *)
  scrcs : int32 Oid.Table.t; (* per-object checksums, primed by the scrubber *)
  sscrub : Scrub.state;
  sobs : Obs.t;
  shealth : Health.t; (* fault-domain state machine *)
  mutable swal : Journal.t option;
  mutable spending : Journal.op list; (* newest first *)
  mutable spending_count : int;
  mutable sepoch : int; (* current on-disk image epoch of this shard *)
  mutable sdirty : bool; (* journal has appended-but-unsynced bytes *)
  mutable sneeds_full : bool; (* this shard's journal can't express its state *)
  mutable sremembered : Oid.Set.t; (* live oids here referenced from other shards *)
}

type t = {
  heap : Heap.t;
  roots : Roots.t;
  blobs : (string, string) Hashtbl.t;
  shards : shard array; (* length >= 1, fixed at creation *)
  obs : Obs.t;
  props : Props.t; (* transient per-store state attached by higher layers *)
  mutable marker : Manifest.Marker.t option; (* multi-shard commit marker *)
  mutable marker_epoch : int; (* current marker file index; -1 = none yet *)
  mutable seq : int; (* store-level stabilise sequence number *)
  mutable committed : int; (* highest seq durably recorded in the marker *)
  mutable side_epoch : int; (* bumped on events that invalidate side caches *)
  mutable retry : Retry.policy option; (* transient-I/O retry, opt-in *)
  mutable retry_overrides : (Retry.io_class * Retry.policy) list;
  mutable breaker : int; (* consecutive exhausted failures before demotion; 0 = off *)
  mutable salvage_degrade : int; (* salvaged entries per shard load that demote; 0 = off *)
  mutable unhealthy : int; (* shards currently not Healthy (hot-path gate) *)
  mutable io_retries : int;
  mutable backing : string option;
  mutable pins : (unit -> Oid.t list) list;
  mutable stabilise_count : int;
  mutable gc_count : int;
  mutable durability : durability;
  mutable needs_full : bool; (* journal can't express state since last image *)
  mutable compaction_limit : int;
  mutable group_window : int; (* stabilises per fsync; 1 = every stabilise *)
  mutable unsynced : int; (* group-committed batches not yet fsynced *)
  mutable compactions : int;
  mutable replayed : int;
  mutable recovered_torn : bool;
  mutable rollback_depth : int; (* compaction is deferred inside with_rollback *)
  mvcc : mvcc; (* snapshot-session versioning state *)
}

(* MVCC snapshot-session state.  Populated only while snapshot sessions
   are open: version chains preserve pre-images for snapshot readers,
   stamps feed first-committer-wins conflict detection, and everything
   here is cleared the moment the last session closes — a store without
   open sessions pays one list-emptiness check per write and nothing
   else. *)
and mvcc = {
  mutable commit_seq : int; (* committed-write epoch, monotone *)
  mutable direct_dirty : bool;
      (* default-session writes share one provisional epoch until sealed *)
  mutable open_sessions : session list; (* snapshot sessions, newest first *)
  mutable next_session_id : int;
  mutable implicit : session option; (* the lazily-made default session *)
  versions : (int * Heap.entry option) list Oid.Table.t;
      (* per-oid pre-image chain, newest epoch first: [(e, v)] is the
         entry's state from just before the write at epoch [e]
         ([None] = the object did not exist yet) *)
  vstamps : int Oid.Table.t; (* oid -> epoch of its last committed write *)
  root_versions : (string, (int * Pvalue.t option) list) Hashtbl.t;
  root_stamps : (string, int) Hashtbl.t;
  blob_versions : (string, (int * string option) list) Hashtbl.t;
  blob_stamps : (string, int) Hashtbl.t;
}

and session_kind =
  | Direct (* the implicit default session: operations pass straight through *)
  | Snapshot_session of int (* epoch pinned at [open_session] *)

and session = {
  s_id : int;
  s_store : t;
  s_kind : session_kind;
  s_overlay : Heap.entry Oid.Table.t;
      (* read-your-writes: private copies of objects this session wrote *)
  s_root_over : (string, Pvalue.t option) Hashtbl.t; (* [None] = removed *)
  s_blob_over : (string, string option) Hashtbl.t;
  mutable s_ops : Journal.op list; (* buffered writes, newest first *)
  mutable s_nops : int;
  mutable s_written : Oid.Set.t; (* pre-existing oids this session wrote *)
  mutable s_allocated : Oid.Set.t; (* oids reserved by this session's allocs *)
  mutable s_state : [ `Live | `Committed | `Aborted ];
}

type store = t

let default_compaction_limit = 4096
let max_shards = 64
let default_breaker = 3
let default_salvage_degrade = 8

module Config = struct
  type nonrec t = {
    durability : durability;
    compaction_limit : int;
    group_window : int;
    retry : Retry.policy option;
    retry_overrides : (Retry.io_class * Retry.policy) list;
    breaker : int;
    salvage_degrade : int;
    backing : string option;
    trace_ring : int;
    tracing : bool;
    shards : int;
  }

  let default =
    {
      durability = Snapshot;
      compaction_limit = default_compaction_limit;
      group_window = 1;
      retry = None;
      retry_overrides = [];
      breaker = default_breaker;
      salvage_degrade = default_salvage_degrade;
      backing = None;
      trace_ring = Obs.default_ring_capacity;
      tracing = false;
      shards = 1;
    }
end

let make_shard () =
  {
    sq = Quarantine.create ();
    scrcs = Oid.Table.create 64;
    sscrub = Scrub.create ();
    (* counters only — no ring, tracing never enabled *)
    sobs = Obs.create ~ring_capacity:0 ();
    shealth = Health.create ();
    swal = None;
    spending = [];
    spending_count = 0;
    sepoch = 0;
    sdirty = false;
    sneeds_full = false;
    sremembered = Oid.Set.empty;
  }

let fresh_mvcc () =
  {
    commit_seq = 0;
    direct_dirty = false;
    open_sessions = [];
    next_session_id = 1;
    implicit = None;
    versions = Oid.Table.create 64;
    vstamps = Oid.Table.create 64;
    root_versions = Hashtbl.create 16;
    root_stamps = Hashtbl.create 16;
    blob_versions = Hashtbl.create 16;
    blob_stamps = Hashtbl.create 16;
  }

let make ?(obs = Obs.create ()) ?(nshards = 1) () =
  if nshards < 1 || nshards > max_shards then
    invalid_arg (Printf.sprintf "Store: shard count must be in 1..%d" max_shards);
  {
    heap = Heap.create ();
    roots = Roots.create ();
    blobs = Hashtbl.create 16;
    shards = Array.init nshards (fun _ -> make_shard ());
    obs;
    props = Props.create ();
    marker = None;
    marker_epoch = -1;
    seq = 0;
    committed = 0;
    side_epoch = 0;
    retry = None;
    retry_overrides = [];
    breaker = default_breaker;
    salvage_degrade = default_salvage_degrade;
    unhealthy = 0;
    io_retries = 0;
    backing = None;
    pins = [];
    stabilise_count = 0;
    gc_count = 0;
    durability = Snapshot;
    needs_full = true;
    compaction_limit = default_compaction_limit;
    group_window = 1;
    unsynced = 0;
    compactions = 0;
    replayed = 0;
    recovered_torn = false;
    rollback_depth = 0;
    mvcc = fresh_mvcc ();
  }

let heap store = store.heap
let roots store = store.roots
let obs store = store.obs
let props store = store.props

(* -- shard routing -------------------------------------------------------- *)

let nshards store = Array.length store.shards
let shards = nshards

let shard_ix_oid store oid =
  let n = Array.length store.shards in
  if n = 1 then 0 else Manifest.shard_of_oid ~count:n oid

let shard_ix_key store key =
  let n = Array.length store.shards in
  if n = 1 then 0 else Manifest.shard_of_key ~count:n key

let shard_of = shard_ix_oid
let shard_oid store oid = Array.unsafe_get store.shards (shard_ix_oid store oid)
let shard_key store key = store.shards.(shard_ix_key store key)
let s0 store = store.shards.(0)

(* Side-cache invalidation: higher layers (the registry's getLink memo)
   stamp their cached entries with this epoch; any event that can change
   what a read observes without going through their own API — quarantine
   churn, a GC sweep, rollback, direct heap surgery — bumps it. *)
let invalidation_epoch store = store.side_epoch
let bump_epoch store = store.side_epoch <- store.side_epoch + 1

let backing store = store.backing

(* -- shard Obs merging ----------------------------------------------------

   Parallel sections bump per-shard counters from pool domains; the
   store-level [obs] (which tests and tooling read) receives the deltas
   once the section is over, on the calling domain. *)

let merged_ops =
  [| Obs.Journal_append; Obs.Group_commit; Obs.Image_save; Obs.Image_load; Obs.Retry |]

let shard_counts store =
  Array.map (fun sh -> Array.map (fun op -> Obs.count sh.sobs op) merged_ops) store.shards

let merge_shard_counts store before =
  Array.iteri
    (fun i sh ->
      Array.iteri
        (fun j op ->
          let d = Obs.count sh.sobs op - before.(i).(j) in
          if d > 0 then Obs.add store.obs op d)
        merged_ops)
    store.shards

(* -- durability mode ------------------------------------------------------ *)

let durability store = store.durability

let journalling store =
  match store.durability with
  | Journalled -> true
  | Snapshot -> false

(* Single-shard journal close (legacy flat layout). *)
let close_wal store =
  let sh = s0 store in
  match sh.swal with
  | Some w ->
    (* An orderly close is a durability barrier: batches whose fsync was
       deferred by the group window must land before the handle goes. *)
    if store.unsynced > 0 then (try Journal.sync w with _ -> ());
    store.unsynced <- 0;
    Journal.close w;
    sh.swal <- None
  | None -> ()

let set_durability store mode =
  if mode <> store.durability then begin
    (match mode with
    | Journalled ->
      (* The journal only describes mutations made while journalling, so
         the first stabilise must write a full image. *)
      store.needs_full <- true
    | Snapshot ->
      if nshards store = 1 then begin
        close_wal store;
        let sh = s0 store in
        sh.spending <- [];
        sh.spending_count <- 0;
        match store.backing with
        | Some path when Sys.file_exists (Journal.path_for path) ->
          Sys.remove (Journal.path_for path)
        | _ -> ()
      end
      else begin
        Array.iter
          (fun sh ->
            (match sh.swal with Some w -> Journal.close w | None -> ());
            sh.swal <- None;
            sh.spending <- [];
            sh.spending_count <- 0;
            sh.sdirty <- false)
          store.shards;
        (match store.marker with Some m -> Manifest.Marker.close m | None -> ());
        store.marker <- None;
        store.unsynced <- 0;
        (match store.backing with
        | Some path ->
          Array.iteri
            (fun k sh ->
              let w = Manifest.shard_wal path k sh.sepoch in
              if Sys.file_exists w then (try Sys.remove w with Sys_error _ -> ()))
            store.shards;
          (if store.marker_epoch >= 0 then begin
             let mp = Manifest.marker_path path store.marker_epoch in
             if Sys.file_exists mp then (try Sys.remove mp with Sys_error _ -> ())
           end);
          if Manifest.is_manifest path then (
            try
              Manifest.save path
                {
                  Manifest.nshards = nshards store;
                  marker_epoch = -1;
                  epochs = Array.map (fun sh -> sh.sepoch) store.shards;
                }
            with Sys_error _ -> ())
        | None -> ());
        store.marker_epoch <- -1
      end);
    store.durability <- mode
  end

let set_compaction_limit store n =
  if n < 0 then invalid_arg "Store.set_compaction_limit: negative";
  store.compaction_limit <- n

let group_window store = store.group_window

(* Group commit: with window n > 1, journalled stabilise coalesces each
   delta into one batch record (per dirty shard) and fsyncs only every
   n-th stabilise (and at compaction and close).  A crash can lose up to
   n-1 recent batches, but each lost batch vanishes whole — never a
   prefix of a delta, and on a sharded store never one shard's half of
   a stabilise (the commit marker gates replay). *)
let set_group_window store n =
  if n < 1 then invalid_arg "Store.set_group_window: window must be >= 1";
  store.group_window <- n

let retry_policy store = store.retry

(* The policy that governs one I/O class: its override if one is
   configured, else the store-wide default policy ([None] = fail fast,
   the crash-injection tests' contract). *)
let policy_for store cls =
  match List.assoc_opt cls store.retry_overrides with
  | Some p -> Some p
  | None -> store.retry

(* -- shard health (fault domains) -----------------------------------------

   Each shard is a fault domain: repeated exhausted transient I/O
   failures (the circuit breaker), a salvage-heavy image load, or an
   unreadable image at open demote ONLY that shard.  A demoted shard is
   read-only — reads serve from memory, writes raise the typed
   [Failure.Shard_degraded] — while every other shard keeps full
   service.  [Store.repair] is the way back.

   The hot-path cost while everything is healthy is one int load
   ([store.unhealthy = 0]); state transitions happen on the calling
   domain only, never from the pool. *)

let refresh_unhealthy store =
  store.unhealthy <-
    Array.fold_left (fun acc sh -> if Health.healthy sh.shealth then acc else acc + 1) 0
      store.shards

let shard_healthy store k = Health.healthy store.shards.(k).shealth
let healthy store = store.unhealthy = 0

let check_shard_index store k =
  if k < 0 || k >= nshards store then
    invalid_arg (Printf.sprintf "Store: shard %d out of range (store has %d)" k (nshards store))

let degrade_shard store k reason =
  check_shard_index store k;
  Health.degrade store.shards.(k).shealth reason;
  refresh_unhealthy store

let offline_shard store k reason =
  check_shard_index store k;
  Health.offline store.shards.(k).shealth reason;
  refresh_unhealthy store

let refuse_write store k st =
  let sh = store.shards.(k) in
  Health.note_refused_write sh.shealth;
  Obs.incr store.obs Obs.Degraded_op;
  let state, reason =
    match st with
    | Health.Degraded r -> ("degraded", r)
    | Health.Offline r -> ("offline", r)
    | Health.Healthy -> ("healthy", "") (* unreachable: guards check first *)
  in
  raise (Failure.Shard_degraded { shard = k; state; reason })

(* Write guard: free while all shards are healthy, one state check on
   the op's own shard otherwise. *)
let guard_shard_write store k =
  if store.unhealthy > 0 then begin
    match Health.state store.shards.(k).shealth with
    | Health.Healthy -> ()
    | st -> refuse_write store k st
  end

let guard_write_oid store oid =
  if store.unhealthy > 0 then guard_shard_write store (shard_ix_oid store oid)

let guard_write_key store key =
  if store.unhealthy > 0 then guard_shard_write store (shard_ix_key store key)

(* Allocation routes by the oid the heap will hand out next, so the
   guard must predict it: refusing AFTER allocating would leak a live
   object into a read-only shard. *)
let guard_alloc store =
  if store.unhealthy > 0 then
    guard_shard_write store (shard_ix_oid store (Oid.of_int (Heap.next_oid store.heap)))

(* Reads always serve (that is the point of degraded mode); a read that
   lands on a demoted shard is counted so operators can see traffic
   running on reduced redundancy. *)
let note_read store oid =
  if store.unhealthy > 0 then begin
    let sh = shard_oid store oid in
    if not (Health.healthy sh.shealth) then begin
      Health.note_degraded_read sh.shealth;
      Obs.incr store.obs Obs.Degraded_op
    end
  end

let note_read_key store key =
  if store.unhealthy > 0 then begin
    let sh = shard_key store key in
    if not (Health.healthy sh.shealth) then begin
      Health.note_degraded_read sh.shealth;
      Obs.incr store.obs Obs.Degraded_op
    end
  end

(* The circuit breaker: after a failed stabilise/compaction, demote (on
   the calling domain) every shard whose consecutive exhausted-failure
   count crossed the threshold.  Successful shard I/O resets the count
   from the pool, so only a persistent run of failures trips it. *)
let trip_breakers store =
  if store.breaker > 0 && nshards store > 1 then begin
    Array.iter
      (fun sh ->
        if Health.healthy sh.shealth && Health.failures sh.shealth >= store.breaker then
          Health.degrade sh.shealth
            (Printf.sprintf "circuit breaker: %d consecutive transient I/O failures"
               (Health.failures sh.shealth)))
      store.shards;
    refresh_unhealthy store
  end

type shard_health = {
  h_shard : int;
  h_state : Health.state;
  h_failures : int; (* consecutive exhausted transient failures *)
  h_trips : int;
  h_degraded_reads : int;
  h_refused_writes : int;
  h_repairs : int;
}

let health store =
  Array.to_list
    (Array.mapi
       (fun k sh ->
         {
           h_shard = k;
           h_state = Health.state sh.shealth;
           h_failures = Health.failures sh.shealth;
           h_trips = Health.trips sh.shealth;
           h_degraded_reads = Health.degraded_reads sh.shealth;
           h_refused_writes = Health.refused_writes sh.shealth;
           h_repairs = Health.repairs sh.shealth;
         })
       store.shards)

let first_unhealthy store =
  let found = ref None in
  Array.iteri
    (fun k sh ->
      if !found = None && not (Health.healthy sh.shealth) then
        found := Some (k, Health.state sh.shealth))
    store.shards;
  !found

(* Run one shard's I/O under its class policy.  Runs on pool domains:
   retries happen in place (after [undo] rolls partial effects back),
   exhaustion feeds the shard's consecutive-failure counter — the
   circuit breaker's input — and success resets it.  Only the counters
   are touched here; the breaker trip itself (a state transition)
   happens later on the calling domain, in [trip_breakers]. *)
let shard_io store sh cls ?(undo = fun () -> ()) f =
  match policy_for store cls with
  | None -> begin
    match f () with
    | v ->
      Health.note_ok sh.shealth;
      v
    | exception e ->
      if Retry.transient e then Health.note_failure sh.shealth;
      raise e
  end
  | Some policy ->
    let v =
      Retry.run ~policy ~obs:sh.sobs ~label:(Retry.class_name cls)
        ~on_retry:(fun _ _ -> undo ())
        ~on_exhausted:(fun _ -> Health.note_failure sh.shealth)
        f
    in
    Health.note_ok sh.shealth;
    v

(* -- configuration --------------------------------------------------------- *)

let configure store (c : Config.t) =
  if c.Config.shards <> nshards store then
    invalid_arg
      (Printf.sprintf
         "Store.configure: shard count is fixed at store creation (store has %d, config asks for \
          %d)"
         (nshards store) c.Config.shards);
  set_durability store c.Config.durability;
  set_compaction_limit store c.Config.compaction_limit;
  set_group_window store c.Config.group_window;
  store.retry <- c.Config.retry;
  store.retry_overrides <- c.Config.retry_overrides;
  if c.Config.breaker < 0 then invalid_arg "Store.configure: negative breaker threshold";
  store.breaker <- c.Config.breaker;
  if c.Config.salvage_degrade < 0 then
    invalid_arg "Store.configure: negative salvage_degrade threshold";
  store.salvage_degrade <- c.Config.salvage_degrade;
  (* [backing = None] leaves the current backing alone: store identity is
     not a tunable, and [open_file ?config] must not clear the path it
     just opened. *)
  (match c.Config.backing with Some p -> store.backing <- Some p | None -> ());
  if Obs.ring_capacity store.obs <> c.Config.trace_ring then
    Obs.set_ring_capacity store.obs c.Config.trace_ring;
  Obs.set_enabled store.obs c.Config.tracing

let config store : Config.t =
  {
    Config.durability = store.durability;
    compaction_limit = store.compaction_limit;
    group_window = store.group_window;
    retry = store.retry;
    retry_overrides = store.retry_overrides;
    breaker = store.breaker;
    salvage_degrade = store.salvage_degrade;
    backing = store.backing;
    trace_ring = Obs.ring_capacity store.obs;
    tracing = Obs.enabled store.obs;
    shards = nshards store;
  }

let create ?config () =
  let nshards =
    match config with
    | Some c -> c.Config.shards
    | None -> 1
  in
  let store = make ~nshards () in
  Option.iter (configure store) config;
  store

let mark_dirty store =
  (* Direct heap surgery happens behind the MVCC hooks' back; a pinned
     snapshot could not survive it. *)
  if store.mvcc.open_sessions <> [] then
    invalid_arg "Store.mark_dirty: open snapshot sessions pin the object graph; commit or abort them first";
  store.needs_full <- true;
  bump_epoch store;
  (* Direct heap surgery invalidates every recorded checksum; the
     scrubber re-primes them on its next pass. *)
  Array.iter (fun sh -> Oid.Table.reset sh.scrcs) store.shards

(* Every journal op belongs to exactly one shard: object mutations hash
   by oid, root/blob mutations by key.  No two shards ever carry ops on
   the same object or key, so cross-shard replay order cannot matter. *)
let record store op =
  let sh =
    match op with
    | Journal.Alloc (oid, _) | Journal.Set_field (oid, _, _) | Journal.Set_elem (oid, _, _) ->
      shard_oid store oid
    | Journal.Set_root (key, _)
    | Journal.Remove_root key
    | Journal.Set_blob (key, _)
    | Journal.Remove_blob key -> shard_key store key
  in
  sh.spending <- op :: sh.spending;
  sh.spending_count <- sh.spending_count + 1

let pending_total store = Array.fold_left (fun acc sh -> acc + sh.spending_count) 0 store.shards

(* -- MVCC versioning ------------------------------------------------------

   Snapshot sessions pin the store's committed-write epoch
   ([mvcc.commit_seq]) at [open_session].  While at least one snapshot
   session is open, every mutation of shared state first preserves the
   pre-image of the object / root / blob it is about to change (once per
   epoch) and stamps the target with the writing epoch.  A snapshot
   reader resolves a target by walking its version chain for the oldest
   pre-image whose epoch is newer than its snapshot; commit uses the
   stamps for first-committer-wins detection.  With no session open the
   tables are empty and every hook below is one list-emptiness check. *)

let sessions_open store = store.mvcc.open_sessions <> []
let open_session_count store = List.length store.mvcc.open_sessions

(* Direct (default-session) writes made since the last seal share one
   provisional epoch, [commit_seq + 1]; sealing closes it off before a
   session pins a snapshot or a commit claims an epoch of its own. *)
let seal_epoch store =
  let m = store.mvcc in
  if m.direct_dirty then begin
    m.commit_seq <- m.commit_seq + 1;
    m.direct_dirty <- false
  end

let capture_oid store epoch oid ~pre_image =
  let m = store.mvcc in
  (match Oid.Table.find_opt m.versions oid with
  | Some ((e, _) :: _) when e = epoch -> () (* already captured this epoch *)
  | prior ->
    let chain = match prior with Some c -> c | None -> [] in
    let before =
      if pre_image then Option.map Journal.copy_entry (Heap.find store.heap oid) else None
    in
    Oid.Table.replace m.versions oid ((epoch, before) :: chain));
  Oid.Table.replace m.vstamps oid epoch

let capture_key versions stamps epoch key current =
  (match Hashtbl.find_opt versions key with
  | Some ((e, _) :: _) when e = epoch -> ()
  | prior ->
    let chain = match prior with Some c -> c | None -> [] in
    Hashtbl.replace versions key ((epoch, current ()) :: chain));
  Hashtbl.replace stamps key epoch

(* Hooks on the direct write path: called before the mutation lands
   (allocation captures an absent pre-image once the oid is known). *)
let mvcc_note_write store oid =
  if sessions_open store then begin
    let m = store.mvcc in
    m.direct_dirty <- true;
    capture_oid store (m.commit_seq + 1) oid ~pre_image:true
  end

let mvcc_note_alloc store oid =
  if sessions_open store then begin
    let m = store.mvcc in
    m.direct_dirty <- true;
    capture_oid store (m.commit_seq + 1) oid ~pre_image:false
  end

let mvcc_note_root store key =
  if sessions_open store then begin
    let m = store.mvcc in
    m.direct_dirty <- true;
    capture_key m.root_versions m.root_stamps (m.commit_seq + 1) key (fun () ->
        Roots.find store.roots key)
  end

let mvcc_note_blob store key =
  if sessions_open store then begin
    let m = store.mvcc in
    m.direct_dirty <- true;
    capture_key m.blob_versions m.blob_stamps (m.commit_seq + 1) key (fun () ->
        Hashtbl.find_opt store.blobs key)
  end

(* The chain is newest-first, so the LAST element whose epoch is newer
   than the snapshot holds the state the snapshot saw. *)
let chain_pick snap chain =
  let rec go best = function
    | [] -> best
    | (e, v) :: rest -> if e > snap then go (Some v) rest else best
  in
  go None chain

let snapshot_entry store snap oid =
  match Oid.Table.find_opt store.mvcc.versions oid with
  | None | Some [] -> Heap.find store.heap oid
  | Some chain -> (
    match chain_pick snap chain with
    | Some before -> before
    | None -> Heap.find store.heap oid)

let snapshot_root_value store snap key =
  match Hashtbl.find_opt store.mvcc.root_versions key with
  | None | Some [] -> Roots.find store.roots key
  | Some chain -> (
    match chain_pick snap chain with
    | Some v -> v
    | None -> Roots.find store.roots key)

let snapshot_blob_value store snap key =
  match Hashtbl.find_opt store.mvcc.blob_versions key with
  | None | Some [] -> Hashtbl.find_opt store.blobs key
  | Some chain -> (
    match chain_pick snap chain with
    | Some v -> v
    | None -> Hashtbl.find_opt store.blobs key)

(* -- roots --------------------------------------------------------------- *)

let set_root store name v =
  guard_write_key store name;
  Obs.incr store.obs Obs.Set;
  mvcc_note_root store name;
  Roots.set store.roots name v;
  if journalling store then record store (Journal.Set_root (name, v))

let root store name =
  note_read_key store name;
  Obs.incr store.obs Obs.Root_lookup;
  Roots.find store.roots name

let remove_root store name =
  guard_write_key store name;
  Obs.incr store.obs Obs.Set;
  mvcc_note_root store name;
  Roots.remove store.roots name;
  if journalling store then record store (Journal.Remove_root name)

let root_names store = Roots.names store.roots

(* -- allocation & access ------------------------------------------------- *)

(* Allocations are journalled with a copy of the entry as allocated —
   a copy, because the live entry is mutable and the op may outlive
   arbitrary later mutations (rollback replays it).  Subsequent mutations
   arrive as their own records, so replay converges on the same final
   state in the same order. *)
let journal_alloc store oid =
  record store (Journal.Alloc (oid, Journal.copy_entry (Heap.get store.heap oid)))

let alloc_record store class_name fields =
  guard_alloc store;
  Obs.span store.obs Obs.Alloc ~label:class_name (fun () ->
      let oid = Heap.alloc_record store.heap class_name fields in
      mvcc_note_alloc store oid;
      if journalling store then journal_alloc store oid;
      oid)

let alloc_array store elem_type elems =
  guard_alloc store;
  Obs.span store.obs Obs.Alloc ~label:elem_type (fun () ->
      let oid = Heap.alloc_array store.heap elem_type elems in
      mvcc_note_alloc store oid;
      if journalling store then journal_alloc store oid;
      oid)

let alloc_string store s =
  guard_alloc store;
  Obs.span store.obs Obs.Alloc ~label:"string" (fun () ->
      let oid = Heap.alloc_string store.heap s in
      mvcc_note_alloc store oid;
      if journalling store then journal_alloc store oid;
      oid)

let alloc_weak store target =
  guard_alloc store;
  Obs.span store.obs Obs.Alloc ~label:"weak" (fun () ->
      let oid = Heap.alloc_weak store.heap target in
      mvcc_note_alloc store oid;
      if journalling store then journal_alloc store oid;
      oid)

(* Reads of a quarantined oid fail with the typed [Quarantined] error so
   callers can degrade gracefully instead of consuming corrupt state.
   One lookup: the reason doubles as the membership test. *)
let check_q store oid =
  note_read store oid;
  match Quarantine.find (shard_oid store oid).sq oid with
  | Some reason ->
    Obs.incr store.obs Obs.Quarantine_hit;
    raise (Quarantine.Quarantined (oid, reason))
  | None -> ()

(* A mutation invalidates the object's recorded checksum; the scrubber
   re-primes it on its next pass (trust-on-first-scan — no per-write
   hashing cost on the hot path). *)
let invalidate_crc store oid = Oid.Table.remove (shard_oid store oid).scrcs oid

let get store oid =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Get ~oid (fun () ->
        check_q store oid;
        Heap.get store.heap oid)
  else begin
    Obs.incr store.obs Obs.Get;
    check_q store oid;
    Heap.get store.heap oid
  end

let find store oid =
  Obs.incr store.obs Obs.Get;
  if Quarantine.mem (shard_oid store oid).sq oid then None else Heap.find store.heap oid

let is_live store oid = Heap.is_live store.heap oid

let class_of store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.class_of store.heap oid

let get_record store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_record store.heap oid

let get_array store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_array store.heap oid

let get_string store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_string store.heap oid

let get_weak store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_weak store.heap oid

let field store oid idx =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Get ~oid (fun () ->
        check_q store oid;
        Heap.field store.heap oid idx)
  else begin
    Obs.incr store.obs Obs.Get;
    check_q store oid;
    Heap.field store.heap oid idx
  end

let set_field store oid idx v =
  guard_write_oid store oid;
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Set ~oid (fun () ->
        check_q store oid;
        mvcc_note_write store oid;
        Heap.set_field store.heap oid idx v;
        invalidate_crc store oid;
        if journalling store then record store (Journal.Set_field (oid, idx, v)))
  else begin
    Obs.incr store.obs Obs.Set;
    check_q store oid;
    mvcc_note_write store oid;
    Heap.set_field store.heap oid idx v;
    invalidate_crc store oid;
    if journalling store then record store (Journal.Set_field (oid, idx, v))
  end

let elem store oid idx =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Get ~oid (fun () ->
        check_q store oid;
        Heap.elem store.heap oid idx)
  else begin
    Obs.incr store.obs Obs.Get;
    check_q store oid;
    Heap.elem store.heap oid idx
  end

let set_elem store oid idx v =
  guard_write_oid store oid;
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Set ~oid (fun () ->
        check_q store oid;
        mvcc_note_write store oid;
        Heap.set_elem store.heap oid idx v;
        invalidate_crc store oid;
        if journalling store then record store (Journal.Set_elem (oid, idx, v)))
  else begin
    Obs.incr store.obs Obs.Set;
    check_q store oid;
    mvcc_note_write store oid;
    Heap.set_elem store.heap oid idx v;
    invalidate_crc store oid;
    if journalling store then record store (Journal.Set_elem (oid, idx, v))
  end

let array_length store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.array_length store.heap oid

(* -- salvage reads -------------------------------------------------------- *)

let try_get store oid =
  note_read store oid;
  Obs.incr store.obs Obs.Get;
  match Quarantine.find (shard_oid store oid).sq oid with
  | Some reason ->
    Obs.incr store.obs Obs.Quarantine_hit;
    Error (Failure.Quarantined { oid; reason })
  | None -> begin
    match Heap.find store.heap oid with
    | Some entry -> Ok entry
    | None -> Error (Failure.Dangling oid)
  end

let try_field store oid idx =
  match try_get store oid with
  | Error e -> Error e
  | Ok entry -> begin
    match Heap.field store.heap oid idx with
    | v -> Ok v
    | exception Heap.Heap_error _ ->
      let container =
        match entry with
        | Heap.Record r -> r.Heap.class_name
        | Heap.Array a -> a.Heap.elem_type ^ "[]"
        | Heap.Str _ -> "string"
        | Heap.Weak _ -> "weak cell"
      in
      Error (Failure.Bad_index { container; index = idx })
  end

(* -- quarantine ----------------------------------------------------------- *)

(* Quarantine membership changes cannot be expressed as journal ops, so
   they force a fresh image of the owning shard at the next compaction
   point — which is also what persists the quarantine set across reopen.
   The invariant is shard-local: an oid is quarantined in (and only in)
   its own shard, so on a sharded store only that shard pays the image
   rewrite ([sneeds_full] selects it for a partial compaction). *)
let quarantine_oid store oid reason =
  let sh = shard_oid store oid in
  Quarantine.add sh.sq oid reason;
  Oid.Table.remove sh.scrcs oid;
  bump_epoch store;
  if nshards store = 1 then store.needs_full <- true else sh.sneeds_full <- true

let clear_quarantine store oid =
  let sh = shard_oid store oid in
  if Quarantine.mem sh.sq oid then begin
    Quarantine.remove sh.sq oid;
    bump_epoch store;
    if nshards store = 1 then store.needs_full <- true else sh.sneeds_full <- true
  end

let quarantine_reason store oid = Quarantine.find (shard_oid store oid).sq oid
let is_quarantined store oid = Quarantine.mem (shard_oid store oid).sq oid

let quarantined store =
  if nshards store = 1 then Quarantine.to_list (s0 store).sq
  else
    Array.fold_left (fun acc sh -> List.rev_append (Quarantine.to_list sh.sq) acc) [] store.shards
    |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)

let quarantined_total store =
  Array.fold_left (fun acc sh -> acc + Quarantine.size sh.sq) 0 store.shards

let size store = Heap.size store.heap

(* Interned string allocation would be possible, but Java semantics gives
   distinct identity to non-literal strings; we allocate fresh. *)
let string_value store = function
  | Pvalue.Ref oid -> Heap.get_string store.heap oid
  | v ->
    raise (Heap.Heap_error ("expected a string reference, got " ^ Pvalue.to_string v))

(* -- blobs --------------------------------------------------------------- *)

let set_blob store key data =
  guard_write_key store key;
  Obs.incr store.obs Obs.Set;
  mvcc_note_blob store key;
  Hashtbl.replace store.blobs key data;
  if journalling store then record store (Journal.Set_blob (key, data))

let blob store key =
  note_read_key store key;
  Obs.incr store.obs Obs.Get;
  Hashtbl.find_opt store.blobs key

let remove_blob store key =
  guard_write_key store key;
  Obs.incr store.obs Obs.Set;
  mvcc_note_blob store key;
  Hashtbl.remove store.blobs key;
  if journalling store then record store (Journal.Remove_blob key)

let blob_keys store =
  Hashtbl.fold (fun k _ acc -> k :: acc) store.blobs [] |> List.sort String.compare

(* -- pins (transient strong roots) --------------------------------------- *)

let add_pin store f = store.pins <- f :: store.pins

let pinned_oids store = List.concat_map (fun f -> f ()) store.pins

(* -- GC & stabilisation -------------------------------------------------- *)

(* Quarantined objects that still have heap entries are kept across GC
   (corrupt data is evidence, and structure reachable only through them
   may still be salvageable), so they seed the mark alongside the pins.
   Quarantine records for already-dead oids contribute nothing. *)
let quarantine_roots store =
  List.filter (Heap.is_live store.heap) (List.map fst (quarantined store))

let gc store =
  (* A sweep reclaims objects a pinned snapshot may still see; sessions
     and GC are therefore mutually exclusive by construction. *)
  if sessions_open store then
    invalid_arg "Store.gc: open snapshot sessions pin the object graph; commit or abort them first";
  (* A sweep touches every shard's objects and forces a full compaction,
     which needs every shard writable — refuse while any is down rather
     than silently dropping a demoted shard's garbage analysis. *)
  (if store.unhealthy > 0 then
     match first_unhealthy store with
     | Some (k, st) -> refuse_write store k st
     | None -> ());
  Obs.span store.obs Obs.Gc (fun () ->
      store.gc_count <- store.gc_count + 1;
      bump_epoch store;
      (* A sweep removes objects and clears weak cells behind the journal's
         back; the next stabilise must therefore compact. *)
      if journalling store then store.needs_full <- true;
      let extra_roots = quarantine_roots store @ pinned_oids store in
      let stats =
        if nshards store = 1 then Gc.collect ~extra_roots store.heap store.roots
        else begin
          let n = nshards store in
          let stats, remembered =
            Gc.collect_sharded ~nshards:n
              ~shard_of:(fun oid -> Manifest.shard_of_oid ~count:n oid)
              ~extra_roots store.heap store.roots
          in
          Array.iteri (fun k r -> store.shards.(k).sremembered <- r) remembered;
          stats
        end
      in
      (* Recorded checksums of swept objects are stale, and the sweep may
         have cleared weak-cell targets behind the checksum's back. *)
      Array.iter
        (fun sh ->
          let stale =
            Oid.Table.fold
              (fun oid _ acc ->
                match Heap.find store.heap oid with
                | None | Some (Heap.Weak _) -> oid :: acc
                | Some _ -> acc)
              sh.scrcs []
          in
          List.iter (Oid.Table.remove sh.scrcs) stale)
        store.shards;
      stats)

let reachable store =
  Gc.reachable
    ~extra_roots:(quarantine_roots store @ pinned_oids store)
    store.heap store.roots

(* A single-shard store's contents share its quarantine set (the legacy
   contract); a sharded store merges the per-shard sets into a fresh one,
   so fingerprints are identical whatever the shard count. *)
let contents store =
  let quarantine =
    if nshards store = 1 then (s0 store).sq
    else begin
      let q = Quarantine.create () in
      Array.iter
        (fun sh -> List.iter (fun (oid, r) -> Quarantine.add q oid r) (Quarantine.to_list sh.sq))
        store.shards;
      q
    end
  in
  { Image.heap = store.heap; roots = store.roots; blobs = store.blobs; quarantine }

(* -- scrubbing ------------------------------------------------------------ *)

let default_scrub_budget = 256

let scrub ?(budget = default_scrub_budget) store =
  Obs.span store.obs Obs.Scrub_step (fun () ->
      let report =
        if nshards store = 1 then begin
          let sh = s0 store in
          Scrub.step sh.sscrub ~heap:store.heap ~crcs:sh.scrcs ~quarantine:sh.sq ~budget ()
        end
        else begin
          let n = nshards store in
          let per = max 1 ((budget + n - 1) / n) in
          (* If any shard is about to start a fresh pass, partition a heap
             snapshot here on the calling domain: the lazy default reseed
             would walk the (shared) heap from inside pool domains. *)
          let parts =
            if Array.exists (fun sh -> Scrub.pending sh.sscrub = 0) store.shards then begin
              let parts = Array.make n [] in
              List.iter
                (fun oid ->
                  let k = shard_ix_oid store oid in
                  parts.(k) <- oid :: parts.(k))
                (List.rev (List.sort Oid.compare (Heap.oids store.heap)));
              Some parts
            end
            else None
          in
          let reports = Array.make n None in
          Dpool.run n (fun k ->
              let sh = store.shards.(k) in
              let reseed = Option.map (fun p () -> p.(k)) parts in
              reports.(k) <-
                Some
                  (Scrub.step sh.sscrub ~heap:store.heap ~crcs:sh.scrcs ~quarantine:sh.sq ?reseed
                     ~foreign:(fun oid -> shard_ix_oid store oid <> k)
                     ~budget:per ()));
          let merged =
            Array.fold_left
              (fun acc r ->
                match r with
                | None -> acc
                | Some (r : Scrub.report) ->
                  {
                    Scrub.scanned = acc.Scrub.scanned + r.Scrub.scanned;
                    verified = acc.Scrub.verified + r.Scrub.verified;
                    primed = acc.Scrub.primed + r.Scrub.primed;
                    newly_quarantined = acc.Scrub.newly_quarantined @ r.Scrub.newly_quarantined;
                    pass_complete = acc.Scrub.pass_complete && r.Scrub.pass_complete;
                  })
              {
                Scrub.scanned = 0;
                verified = 0;
                primed = 0;
                newly_quarantined = [];
                pass_complete = true;
              }
              reports
          in
          (* Cross-shard dangling targets were only reported by the finding
             shard; apply the quarantine on the owning shard here, after
             the parallel step (the same target may have been reported by
             several shards — dedup first). *)
          let newly =
            List.sort_uniq (fun (a, _) (b, _) -> Oid.compare a b) merged.Scrub.newly_quarantined
          in
          List.iter
            (fun (oid, reason) ->
              let sh = shard_oid store oid in
              if not (Quarantine.mem sh.sq oid) then Quarantine.add sh.sq oid reason;
              Oid.Table.remove sh.scrcs oid)
            newly;
          { merged with Scrub.newly_quarantined = newly }
        end
      in
      if report.Scrub.newly_quarantined <> [] then begin
        (if nshards store = 1 then store.needs_full <- true
         else
           List.iter
             (fun (oid, _) -> (shard_oid store oid).sneeds_full <- true)
             report.Scrub.newly_quarantined);
        bump_epoch store
      end;
      report)

let scrub_progress store = (s0 store).sscrub

let wal_depth store =
  Array.fold_left
    (fun acc sh ->
      acc
      +
      match sh.swal with
      | Some w -> Journal.depth w
      | None -> 0)
    0 store.shards

(* -- single-shard (legacy flat layout) stabilisation ---------------------- *)

let compact store path =
  Obs.span store.obs Obs.Compaction (fun () ->
      close_wal store;
      let crc = Image.save ~obs:store.obs path (contents store) in
      (* The image now contains every pending effect; a crash before the new
         journal header lands leaves a stale journal (old base checksum) that
         recovery discards. *)
      let sh = s0 store in
      sh.spending <- [];
      sh.spending_count <- 0;
      sh.swal <- Some (Journal.create ~obs:store.obs (Journal.path_for path) ~base_crc:crc);
      store.needs_full <- false;
      store.unsynced <- 0;
      store.compactions <- store.compactions + 1)

(* -- sharded stabilisation ------------------------------------------------

   File layout: the store path holds a manifest naming each shard's image
   epoch and the commit-marker epoch; shard k's image is [path.s<k>.<e>],
   its journal [path.s<k>.<e>.wal], the marker [path.marker.<m>].  The
   manifest is replaced atomically (tmp + rename), which makes it the
   commit point of any compaction. *)

let shard_keep store k =
  let n = Array.length store.shards in
  ( (fun oid -> Manifest.shard_of_oid ~count:n oid = k),
    fun key -> Manifest.shard_of_key ~count:n key = k )

let manifest_of store ~marker_epoch =
  {
    Manifest.nshards = nshards store;
    marker_epoch;
    epochs = Array.map (fun sh -> sh.sepoch) store.shards;
  }

let sync_dirty_shards store =
  Dpool.run (nshards store) (fun k ->
      let sh = store.shards.(k) in
      if sh.sdirty && Health.healthy sh.shealth then
        Faults.with_shard_scope k (fun () ->
            shard_io store sh Retry.Journal_append (fun () ->
                (match sh.swal with
                | Some w -> Journal.sync w
                | None -> ());
                sh.sdirty <- false)))

(* Snapshot mode, sharded: every stabilise rewrites all shard images (in
   parallel) and then commits them together with one manifest rename.
   Unhealthy shards are skipped — their old-epoch image stays referenced
   untouched; an OFFLINE shard's slice of the heap is empty, and writing
   that empty slice out would turn a recoverable image into a lost one. *)
let save_shards_snapshot store path =
  let c = contents store in
  let n = nshards store in
  let before = shard_counts store in
  Fun.protect ~finally:(fun () -> merge_shard_counts store before) @@ fun () ->
  let epochs' =
    Array.map (fun sh -> if Health.healthy sh.shealth then sh.sepoch + 1 else sh.sepoch)
      store.shards
  in
  Dpool.run n (fun k ->
      let sh = store.shards.(k) in
      if Health.healthy sh.shealth then
        Faults.with_shard_scope k (fun () ->
            shard_io store sh Retry.Image_save (fun () ->
                let keep_oid, keep_key = shard_keep store k in
                let slice = Image.slice ~keep_oid ~keep_key c in
                ignore (Image.save ~obs:sh.sobs (Manifest.shard_image path k epochs'.(k)) slice
                  : int32))));
  let m = { Manifest.nshards = n; marker_epoch = -1; epochs = epochs' } in
  Manifest.save path m;
  Array.iteri (fun k sh -> sh.sepoch <- epochs'.(k)) store.shards;
  Manifest.cleanup_stale path m

(* The journalled append path.  One store-level sequence number covers
   the whole stabilise: each dirty shard gets one seq-stamped batch
   record, and the sequence number is committed by appending it to the
   marker only after every dirty journal is fsynced.  [force_sync]
   bypasses the group window (compaction uses it: the delta must be
   durable before images start moving).  On failure every journal and the
   marker are truncated back to their savepoints — the whole stabilise
   rolls back, and [needs_full] routes the retry through compaction. *)
let sharded_append ~force_sync store =
  let marker = Option.get store.marker in
  (* A demoted shard takes no part: its pending ops stay buffered (they
     describe heap state that [repair]'s rewrite will persist) and its
     files are not touched.  Demotion therefore never loses a delta — it
     just defers that shard's durability to the repair. *)
  let active sh = Health.healthy sh.shealth in
  let have_pending = Array.exists (fun sh -> active sh && sh.spending <> []) store.shards in
  let seq' = if have_pending then store.seq + 1 else store.seq in
  let saves =
    Array.map
      (fun sh ->
        match sh.swal with
        | Some w when active sh && sh.spending <> [] ->
          Some (w, Journal.position w, Journal.depth w)
        | _ -> None)
      store.shards
  in
  let msave = Manifest.Marker.position marker in
  let before = shard_counts store in
  match
    if have_pending then
      Dpool.run (nshards store) (fun k ->
          let sh = store.shards.(k) in
          match saves.(k) with
          | None -> ()
          | Some (w, pos, depth) ->
            Faults.with_shard_scope k (fun () ->
                (* An interrupted append may have landed a torn prefix;
                   truncating back to the savepoint restores idempotency
                   before each retry. *)
                shard_io store sh Retry.Journal_append
                  ~undo:(fun () -> try Journal.truncate_to w ~pos ~depth with _ -> ())
                  (fun () ->
                    Journal.append_batch ~seq:seq' w (List.rev sh.spending);
                    sh.sdirty <- true)));
    if force_sync || store.unsynced + 1 >= store.group_window then begin
      sync_dirty_shards store;
      if seq' > store.committed then begin
        let commit () =
          Manifest.Marker.append marker seq';
          Manifest.Marker.sync marker
        in
        (match policy_for store Retry.Marker with
        | None -> commit ()
        | Some policy ->
          Retry.run ~policy ~obs:store.obs ~label:(Retry.class_name Retry.Marker)
            ~on_retry:(fun _ _ ->
              store.io_retries <- store.io_retries + 1;
              try Manifest.Marker.truncate_to marker ~pos:msave with _ -> ())
            commit);
        store.committed <- seq'
      end;
      store.unsynced <- 0
    end
    else store.unsynced <- store.unsynced + 1
  with
  | () ->
    merge_shard_counts store before;
    store.seq <- seq';
    Array.iteri
      (fun k sh ->
        if saves.(k) <> None || sh.spending = [] then begin
          sh.spending <- [];
          sh.spending_count <- 0
        end)
      store.shards
  | exception e ->
    merge_shard_counts store before;
    (* Roll the whole stabilise back.  Journals that took part are
       truncated to their savepoints; only the shards whose files were
       actually touched are marked for a fresh image — a healthy shard
       must not pay for its neighbour's failure. *)
    Array.iteri
      (fun k save ->
        match save with
        | Some (w, pos, depth) ->
          (try Journal.truncate_to w ~pos ~depth with _ -> ());
          store.shards.(k).sneeds_full <- true
        | None -> ())
      saves;
    (try Manifest.Marker.truncate_to marker ~pos:msave with _ -> ());
    raise e

(* Sharded compaction.  [selected] says which shards get a fresh image
   (all of them on a full compaction); on a partial compaction the
   current delta is first made durable through the OLD journals and the
   marker, so the subsequent image writes can fail or tear anywhere
   without losing it — nothing references a new-epoch file until the
   manifest rename, which is the single commit point. *)
let compact_shards store path ~full ~selected =
  Obs.span store.obs Obs.Compaction (fun () ->
      let n = nshards store in
      if not full then sharded_append ~force_sync:true store;
      let c = contents store in
      let before = shard_counts store in
      let new_wals = Array.make n None in
      let created_marker = ref None in
      match
        Dpool.run n (fun k ->
            if selected.(k) then begin
              let sh = store.shards.(k) in
              let e' = sh.sepoch + 1 in
              let keep_oid, keep_key = shard_keep store k in
              Faults.with_shard_scope k (fun () ->
                  (* Idempotent under retry: the image write is tmp+rename
                     and the journal create truncates — each attempt
                     rewrites the same new-epoch paths from scratch. *)
                  shard_io store sh Retry.Image_save (fun () ->
                      let slice = Image.slice ~keep_oid ~keep_key c in
                      let crc = Image.save ~obs:sh.sobs (Manifest.shard_image path k e') slice in
                      new_wals.(k) <-
                        Some
                          (Journal.create ~obs:sh.sobs (Manifest.shard_wal path k e')
                             ~base_crc:crc)))
            end);
        merge_shard_counts store before;
        (* a full compaction rotates the marker: sequence numbers restart
           at zero with the fresh journals *)
        let marker_epoch' = if full then store.marker_epoch + 1 else store.marker_epoch in
        if full then
          created_marker := Some (Manifest.Marker.create (Manifest.marker_path path marker_epoch'));
        let epochs' =
          Array.mapi (fun k sh -> if selected.(k) then sh.sepoch + 1 else sh.sepoch) store.shards
        in
        let commit () =
          Manifest.save path { Manifest.nshards = n; marker_epoch = marker_epoch'; epochs = epochs' }
        in
        (match policy_for store Retry.Compaction with
        | None -> commit ()
        | Some policy ->
          Retry.run ~policy ~obs:store.obs ~label:(Retry.class_name Retry.Compaction)
            ~on_retry:(fun _ _ -> store.io_retries <- store.io_retries + 1)
            commit);
        (marker_epoch', epochs')
      with
      | marker_epoch', epochs' ->
        Array.iteri
          (fun k sh ->
            if selected.(k) then begin
              (match sh.swal with
              | Some w -> Journal.close w
              | None -> ());
              sh.swal <- new_wals.(k);
              sh.sdirty <- false;
              sh.sneeds_full <- false;
              sh.sepoch <- epochs'.(k)
            end)
          store.shards;
        if full then begin
          (match store.marker with
          | Some m -> Manifest.Marker.close m
          | None -> ());
          store.marker <- !created_marker;
          store.marker_epoch <- marker_epoch';
          store.seq <- 0;
          store.committed <- 0
        end;
        (* A demoted shard's pending ops stay buffered for its repair:
           its image was not selected, its journal was not appended —
           clearing them would drop the only record that a rewrite is
           still owed. *)
        Array.iter
          (fun sh ->
            if Health.healthy sh.shealth then begin
              sh.spending <- [];
              sh.spending_count <- 0
            end)
          store.shards;
        store.needs_full <- false;
        store.unsynced <- 0;
        store.compactions <- store.compactions + 1;
        Manifest.cleanup_stale path (manifest_of store ~marker_epoch:marker_epoch')
      | exception e ->
        merge_shard_counts store before;
        (* nothing references the new-epoch files (the manifest rename did
           not land); the old state on disk is intact.  Drop the fresh
           handles — retrying truncates and rewrites the same paths. *)
        Array.iter
          (function
            | Some w -> ( try Journal.close w with _ -> ())
            | None -> ())
          new_wals;
        (match !created_marker with
        | Some m -> ( try Manifest.Marker.close m with _ -> ())
        | None -> ());
        if full then store.needs_full <- true
        else Array.iteri (fun k sh -> if selected.(k) then sh.sneeds_full <- true) store.shards;
        raise e)

let per_shard_limit store =
  let n = nshards store in
  max 1 ((store.compaction_limit + n - 1) / n)

let stabilise_once_sharded store path =
  match store.durability with
  | Snapshot -> save_shards_snapshot store path
  | Journalled ->
    let in_rollback = store.rollback_depth > 0 in
    let active sh = Health.healthy sh.shealth in
    (* Missing files of a DEMOTED shard don't force anything: that shard
       is out of service and its rebuild is [repair]'s job.  Only a
       healthy shard without a journal makes appending impossible. *)
    let any_missing =
      store.marker = None || Array.exists (fun sh -> active sh && sh.swal = None) store.shards
    in
    let must_compact = store.needs_full || any_missing in
    let limit = per_shard_limit store in
    let over sh =
      (match sh.swal with
      | Some w -> Journal.depth w
      | None -> 0)
      + sh.spending_count
      > limit
    in
    let want sh = active sh && (over sh || sh.sneeds_full) in
    if must_compact && in_rollback then
      invalid_arg
        "Store.stabilise: store needs compaction inside with_rollback (after a gc or direct \
         heap surgery); stabilise before the transaction instead"
    else if must_compact then begin
      (* A full compaction rewrites every shard and rotates the marker —
         it cannot proceed around a dead shard.  Refuse with the typed
         error naming the shard that must be repaired first. *)
      (if store.unhealthy > 0 then
         match first_unhealthy store with
         | Some (k, st) -> refuse_write store k st
         | None -> ());
      compact_shards store path ~full:true ~selected:(Array.make (nshards store) true)
    end
    else if Array.exists want store.shards && not in_rollback then
      (* Per-shard compaction: only the shards over their slice of the
         limit (or owing a quarantine-change image) pay the rewrite — the
         hot shard compacts while cold shards keep their journals. *)
      compact_shards store path ~full:false ~selected:(Array.map want store.shards)
    else sharded_append ~force_sync:false store

(* One stabilisation attempt.  Both failure paths are idempotent, which
   is what makes the retry wrapper below safe: a failed journal append
   has already set [needs_full] (so a retry compacts instead of appending
   after torn bytes), and a failed compaction just rewrites the temp
   image from scratch. *)
let stabilise_once store path =
  if nshards store > 1 then stabilise_once_sharded store path
  else
    match store.durability with
    | Snapshot -> ignore (Image.save ~obs:store.obs path (contents store) : int32)
    | Journalled ->
      let sh = s0 store in
      let in_rollback = store.rollback_depth > 0 in
      let must_compact = store.needs_full || sh.swal = None in
      let over_limit = wal_depth store + sh.spending_count > store.compaction_limit in
      if must_compact && in_rollback then
        invalid_arg
          "Store.stabilise: store needs compaction inside with_rollback (after a gc or direct \
           heap surgery); stabilise before the transaction instead"
      else if must_compact || (over_limit && not in_rollback) then compact store path
      else begin
        (* Over the limit inside a transaction we keep appending: compaction
           cannot be undone by an abort, the next top-level stabilise does it. *)
        let wal = Option.get sh.swal in
        match
          (* The delta rides as one batch record — atomic under a torn
             write.  With a group window, the fsync is amortised over
             [group_window] stabilises; a crash loses whole recent batches,
             never part of one. *)
          Journal.append_batch wal (List.rev sh.spending);
          if store.unsynced + 1 >= store.group_window then begin
            Journal.sync wal;
            store.unsynced <- 0
          end
          else store.unsynced <- store.unsynced + 1
        with
        | () ->
          sh.spending <- [];
          sh.spending_count <- 0
        | exception e ->
          (* The journal tail is now suspect (possibly torn); recover by
             compacting next time rather than appending after garbage. *)
          store.needs_full <- true;
          raise e
      end

let stabilise ?path store =
  let path =
    match path, store.backing with
    | Some p, _ ->
      store.backing <- Some p;
      p
    | None, Some p -> p
    | None, None -> invalid_arg "Store.stabilise: no backing file"
  in
  store.stabilise_count <- store.stabilise_count + 1;
  let mode =
    match store.durability with
    | Snapshot -> "snapshot"
    | Journalled -> "journalled"
  in
  Obs.span store.obs Obs.Stabilise ~label:mode (fun () ->
      let attempt () = stabilise_once store path in
      let run () =
        match policy_for store Retry.Stabilise with
        | None -> attempt ()
        | Some policy ->
          Retry.run ~policy ~obs:store.obs ~label:"stabilise"
            ~on_retry:(fun _ _ -> store.io_retries <- store.io_retries + 1)
            attempt
      in
      match run () with
      | () -> ()
      | exception e ->
        (* The per-shard failure counters were fed while the attempts ran
           (on pool domains); the state transition happens here, once,
           after the whole stabilise has given up. *)
        trip_breakers store;
        raise e)

(* -- open / recovery ------------------------------------------------------ *)

let distribute_quarantine store q =
  List.iter (fun (oid, reason) -> Quarantine.add (shard_oid store oid).sq oid reason)
    (Quarantine.to_list q)

let of_contents ?obs ?backing { Image.heap; roots; blobs; quarantine } =
  let base = make ?obs () in
  let store = { base with heap; roots; blobs; backing } in
  distribute_quarantine store quarantine;
  store

(* Legacy flat-image open (single shard). *)
let open_flat ?config path =
  let obs = Obs.create () in
  let contents, crc =
    try Image.load_with_crc ~obs path
    with (Image.Image_error _ | Codec.Decode_error _ | Sys_error _) as e -> begin
      (* A crash between writing and renaming a snapshot can leave a
         complete image under the temp name; promote it rather than fail. *)
      let tmp = path ^ ".tmp" in
      match (try Some (Image.load_with_crc ~obs tmp) with _ -> None) with
      | Some (c, crc) ->
        Faults.rename tmp path;
        (c, crc)
      | None -> raise e
    end
  in
  let store = of_contents ~obs ~backing:path contents in
  let sh = s0 store in
  (match Journal.read (Journal.path_for path) with
  | Some replay when Int32.equal replay.Journal.base_crc crc ->
    List.iter
      (fun (op, _) -> Journal.apply op store.heap store.roots store.blobs)
      replay.Journal.records;
    store.replayed <- List.length replay.Journal.records;
    store.recovered_torn <- replay.Journal.torn;
    store.durability <- Journalled;
    sh.swal <-
      Some
        (Journal.open_for_append ~obs (Journal.path_for path)
           ~valid_bytes:replay.Journal.valid_bytes ~depth:store.replayed);
    store.needs_full <- false
  | Some _ ->
    (* Stale journal: the image is newer (a compaction's journal reset
       never landed).  The image already holds every journalled effect. *)
    store.durability <- Journalled;
    store.needs_full <- true
  | None -> ());
  (* A salvage load quarantined objects the on-disk image does not yet
     record as such; force a compaction so the next stabilise persists
     the quarantine set. *)
  if not (Quarantine.is_empty sh.sq) then store.needs_full <- true;
  (* An explicit configuration is applied last, so it wins over the
     recovered durability mode.  The shard count is whatever the file
     has: it is persistent state, not a tunable. *)
  Option.iter (fun (c : Config.t) -> configure store { c with Config.shards = 1 }) config;
  store

(* Every oid any surviving entry or root still references.  Weak targets
   count too: resurrecting a weak reference onto a recycled oid would
   alias just like a strong one. *)
let iter_referenced_oids store f =
  Heap.iter
    (fun _ entry ->
      List.iter f (Heap.strong_refs entry);
      match entry with
      | Heap.Weak { Heap.target = Pvalue.Ref o } -> f o
      | _ -> ())
    store.heap;
  Roots.iter
    (fun _ v ->
      match v with
      | Pvalue.Ref o -> f o
      | _ -> ())
    store.roots

(* After a shard's image is lost, its allocation history is unknown;
   handing out an oid number a survivor still references would alias the
   dangling reference onto a fresh object.  Advance the allocator past
   everything still referenced from the surviving shards. *)
let bump_past_references store =
  let bump = ref (Heap.next_oid store.heap) in
  iter_referenced_oids store (fun o -> if Oid.to_int o >= !bump then bump := Oid.to_int o + 1);
  Heap.set_next_oid store.heap !bump

(* Sharded open: load every shard image (in parallel), merge, then replay
   each shard's journal up to the marker's committed sequence number.
   Batches past the committed point are dropped whole — another shard's
   half of the same stabilise may be missing, and the marker is the only
   witness that all halves landed.

   Shard faults are contained at open: an unreadable image takes ONLY
   that shard offline (its slice of the heap stays empty until
   [repair]); a salvage-heavy load — more than [salvage_degrade]
   quarantined entries — opens the shard degraded.  The rest of the
   store loads and serves normally. *)
let open_sharded ?config path =
  let obs = Obs.create () in
  let m = Manifest.load path in
  let n = m.Manifest.nshards in
  let store = make ~obs ~nshards:n () in
  store.backing <- Some path;
  (* The full configuration is applied last (it must win over recovered
     state), but the load below already consults the retry policies and
     health thresholds — install those up front. *)
  (match config with
  | Some (c : Config.t) ->
    store.retry <- c.Config.retry;
    store.retry_overrides <- c.Config.retry_overrides;
    store.breaker <- c.Config.breaker;
    store.salvage_degrade <- c.Config.salvage_degrade
  | None -> ());
  let parts : Image.load_report option array = Array.make n None in
  let fails = Array.make n None in
  let before = shard_counts store in
  Dpool.run n (fun k ->
      let sh = store.shards.(k) in
      Faults.with_shard_scope k (fun () ->
          match
            shard_io store sh Retry.Image_load (fun () ->
                Image.load_report ~obs:sh.sobs (Manifest.shard_image path k m.Manifest.epochs.(k)))
          with
          | r -> parts.(k) <- Some r
          | exception
              (( Image.Image_error _ | Codec.Decode_error _ | Sys_error _
               | Faults.Fault_injected _ | Unix.Unix_error _ ) as e) ->
            fails.(k) <- Some (Printexc.to_string e)));
  merge_shard_counts store before;
  (* Health transitions happen here, on the calling domain, after the
     parallel loads have joined. *)
  Array.iteri
    (fun k fail ->
      match (fail, parts.(k)) with
      | Some reason, _ ->
        Health.offline store.shards.(k).shealth ("image load failed: " ^ reason)
      | None, Some r
        when store.salvage_degrade > 0 && r.Image.lr_salvaged >= store.salvage_degrade ->
        Health.degrade store.shards.(k).shealth
          (Printf.sprintf "salvage-heavy image load: %d entries quarantined" r.Image.lr_salvaged)
      | _ -> ())
    fails;
  refresh_unhealthy store;
  Array.iteri
    (fun k part ->
      match part with
      | None -> ()
      | Some (r : Image.load_report) ->
        let c = r.Image.lr_contents in
        Heap.iter (fun oid entry -> Heap.insert store.heap oid entry) c.Image.heap;
        if Heap.next_oid c.Image.heap > Heap.next_oid store.heap then
          Heap.set_next_oid store.heap (Heap.next_oid c.Image.heap);
        Roots.iter (Roots.set store.roots) c.Image.roots;
        Hashtbl.iter (Hashtbl.replace store.blobs) c.Image.blobs;
        Quarantine.replace_all store.shards.(k).sq ~from:c.Image.quarantine)
    parts;
  (* Epochs are persistent state: a compaction that forgot them would
     overwrite live image files in place instead of committing fresh
     epoch files through the manifest rename. *)
  Array.iteri (fun k sh -> sh.sepoch <- m.Manifest.epochs.(k)) store.shards;
  if m.Manifest.marker_epoch >= 0 then begin
    store.durability <- Journalled;
    store.marker_epoch <- m.Manifest.marker_epoch;
    let mpath = Manifest.marker_path path m.Manifest.marker_epoch in
    match Manifest.Marker.read mpath with
    | None ->
      (* No readable marker: no batch is known committed.  Replay nothing
         and rebuild everything at the next stabilise. *)
      store.needs_full <- true
    | Some mr ->
      store.committed <- mr.Manifest.Marker.committed;
      store.seq <- mr.Manifest.Marker.committed;
      let replayed = ref 0 in
      let all_journals_good = ref true in
      Array.iteri
        (fun k sh ->
          match parts.(k) with
          | None -> () (* offline: [repair] salvages its journal later *)
          | Some (r : Image.load_report) -> begin
            let wpath = Manifest.shard_wal path k m.Manifest.epochs.(k) in
            match Journal.read wpath with
            | Some jr when Int32.equal jr.Journal.base_crc r.Image.lr_crc ->
              let stop = ref false in
              let valid = ref Journal.header_size in
              let depth = ref 0 in
              List.iter
                (fun (b : Journal.batch) ->
                  if not !stop then begin
                    match b.Journal.b_seq with
                    | Some s when s > store.committed -> stop := true
                    | _ ->
                      List.iter
                        (fun op -> Journal.apply op store.heap store.roots store.blobs)
                        b.Journal.b_ops;
                      let nops = List.length b.Journal.b_ops in
                      replayed := !replayed + nops;
                      depth := !depth + nops;
                      valid := b.Journal.b_end
                  end)
                jr.Journal.batches;
              if jr.Journal.torn then store.recovered_torn <- true;
              sh.swal <-
                Some
                  (Journal.open_for_append ~obs:sh.sobs wpath ~valid_bytes:!valid ~depth:!depth)
            | Some _ | None ->
              (* Missing or stale journal (its base image moved on, or the
                 file tore at the header): its shard image already holds or
                 supersedes the journalled effects that mattered — force a
                 fresh full compaction rather than trusting the tail. *)
              all_journals_good := false;
              store.needs_full <- true
          end)
        store.shards;
      store.replayed <- !replayed;
      (* Every journal matched its image and replayed cleanly: the next
         stabilise may append, like the flat open.  (A fresh [make] starts
         with [needs_full] set, which would otherwise force a pointless
         full compaction on the first stabilise after every reopen.) *)
      if !all_journals_good then store.needs_full <- false;
      store.marker <-
        Some (Manifest.Marker.open_for_append mpath ~valid_bytes:mr.Manifest.Marker.valid_bytes)
  end;
  (* A salvage load quarantined objects the on-disk image does not yet
     record as such; mark the owning shard so its next compaction point
     persists the quarantine set. *)
  Array.iter
    (fun sh -> if not (Quarantine.is_empty sh.sq) then sh.sneeds_full <- true)
    store.shards;
  if store.unhealthy > 0 then bump_past_references store;
  Option.iter (fun (c : Config.t) -> configure store { c with Config.shards = n }) config;
  (* Files from epochs this manifest superseded (a crash mid-compaction
     leaves them behind) are unreferenced — sweep them now. *)
  Manifest.cleanup_stale path m;
  store

let open_file ?config path =
  if Manifest.is_manifest path then open_sharded ?config path else open_flat ?config path

(* Both [close] and [crash] are idempotent and safe on any durability
   mode: each drops the journal handles (a no-op when there are none, as
   in snapshot mode or after a previous close/crash).  [close]
   additionally seals a final observability snapshot and empties the
   trace ring; [crash] drops the ring without snapshotting, exactly as a
   process crash would lose in-flight trace state. *)
let close store =
  if nshards store = 1 then close_wal store
  else begin
    (* durability barrier: flush deferred batches, then commit the
       current sequence number before the handles go *)
    (try
       if store.unsynced > 0 || Array.exists (fun sh -> sh.sdirty) store.shards then
         sync_dirty_shards store;
       match store.marker with
       | Some m when store.seq > store.committed ->
         Manifest.Marker.append m store.seq;
         Manifest.Marker.sync m;
         store.committed <- store.seq
       | _ -> ()
     with _ -> ());
    Array.iter
      (fun sh ->
        (match sh.swal with
        | Some w -> ( try Journal.close w with _ -> ())
        | None -> ());
        sh.swal <- None;
        sh.sdirty <- false)
      store.shards;
    (match store.marker with
    | Some m -> ( try Manifest.Marker.close m with _ -> ())
    | None -> ());
    store.marker <- None;
    store.unsynced <- 0
  end;
  Obs.flush store.obs

let crash store =
  Array.iter
    (fun sh ->
      (match sh.swal with
      | Some w -> ( try Journal.crash w with _ -> ())
      | None -> ());
      sh.swal <- None;
      sh.sdirty <- false)
    store.shards;
  (match store.marker with
  | Some m -> ( try Manifest.Marker.crash m with _ -> ())
  | None -> ());
  store.marker <- None;
  store.unsynced <- 0;
  Obs.drop store.obs

(* -- repair ---------------------------------------------------------------- *)

type repair_report = {
  r_shard : int;
  r_was : Health.state; (* the state the shard was repaired out of *)
  r_restored : int; (* heap entries recovered from its on-disk image *)
  r_replayed : int; (* journal ops re-applied on top of them *)
  r_lost : int; (* referenced oids that stayed unrecoverable (quarantined) *)
  r_ms : float; (* wall-clock repair time, milliseconds *)
}

(* Rebuild an OFFLINE shard's slice of the heap from whatever survives on
   disk: the image (salvage-tolerant), then its journal — gated by the
   marker's committed sequence number exactly like normal recovery, but
   op-by-op lenient: an op whose base object was unrecoverable is
   skipped, not fatal.  The degraded case needs none of this — memory
   was never lost, only the shard's files fell out of trust. *)
let rebuild_offline_shard store k ~restored ~replayed =
  match store.backing with
  | None -> ()
  | Some path ->
    let sh = store.shards.(k) in
    let img =
      try Some (Image.load_report (Manifest.shard_image path k sh.sepoch)) with _ -> None
    in
    (match img with
    | Some (r : Image.load_report) ->
      let c = r.Image.lr_contents in
      Heap.iter
        (fun oid entry ->
          if not (Heap.is_live store.heap oid) then begin
            Heap.insert store.heap oid entry;
            incr restored
          end)
        c.Image.heap;
      if Heap.next_oid c.Image.heap > Heap.next_oid store.heap then
        Heap.set_next_oid store.heap (Heap.next_oid c.Image.heap);
      Roots.iter (Roots.set store.roots) c.Image.roots;
      Hashtbl.iter (Hashtbl.replace store.blobs) c.Image.blobs;
      List.iter
        (fun (oid, reason) -> Quarantine.add sh.sq oid reason)
        (Quarantine.to_list c.Image.quarantine)
    | None -> ());
    (match Journal.read (Manifest.shard_wal path k sh.sepoch) with
    | None -> ()
    | Some jr ->
      let fresh =
        match img with
        | Some r -> Int32.equal jr.Journal.base_crc r.Image.lr_crc
        | None -> true (* no image to pair against: best-effort salvage *)
      in
      if fresh then begin
        let stop = ref false in
        List.iter
          (fun (b : Journal.batch) ->
            if not !stop then begin
              match b.Journal.b_seq with
              | Some s when s > store.committed -> stop := true
              | _ ->
                List.iter
                  (fun op ->
                    match Journal.apply op store.heap store.roots store.blobs with
                    | () -> incr replayed
                    | exception _ -> ())
                  b.Journal.b_ops
            end)
          jr.Journal.batches
      end)

(* References from survivors into shard [k] that still have no live
   object after the rebuild are permanently lost; quarantine them so
   reads fail with the typed reason instead of a bare dangling error. *)
let quarantine_lost_refs store k =
  let sh = store.shards.(k) in
  let lost = ref Oid.Set.empty in
  iter_referenced_oids store (fun o ->
      if
        shard_ix_oid store o = k
        && (not (Heap.is_live store.heap o))
        && not (Quarantine.mem sh.sq o)
      then lost := Oid.Set.add o !lost);
  Oid.Set.iter
    (fun o -> Quarantine.add sh.sq o "lost with its shard (unrecovered by repair)")
    !lost;
  Oid.Set.cardinal !lost

let repair store k =
  check_shard_index store k;
  let sh = store.shards.(k) in
  match Health.state sh.shealth with
  | Health.Healthy -> None
  | was ->
    Some
      (Obs.span store.obs Obs.Repair (fun () ->
           let t0 = Unix.gettimeofday () in
           let restored = ref 0 and replayed = ref 0 in
           (match was with
           | Health.Offline _ -> rebuild_offline_shard store k ~restored ~replayed
           | _ -> ());
           let lost =
             match was with
             | Health.Offline _ -> quarantine_lost_refs store k
             | _ -> 0
           in
           Health.promote sh.shealth;
           refresh_unhealthy store;
           bump_epoch store;
           (* The shard's recorded checksums describe entries from before
              the outage; let the scrubber re-prime them. *)
           Oid.Table.reset sh.scrcs;
           (* Durable rewrite: the shard owes the disk a fresh image
              covering everything that happened while it was out of
              service (buffered pending ops, salvage quarantine, the
              rebuild).  On a journalled backed store, pay it now. *)
           sh.sneeds_full <- true;
           (match store.backing with
           | Some path when store.durability = Journalled && nshards store > 1 -> begin
             match
               if store.needs_full || store.marker = None then begin
                 if store.unhealthy = 0 then
                   compact_shards store path ~full:true
                     ~selected:(Array.make (nshards store) true)
                 (* else: another shard is still down — the last repair
                    reaches this full compaction for everyone *)
               end
               else
                 compact_shards store path ~full:false
                   ~selected:(Array.init (nshards store) (fun i -> i = k))
             with
             | () -> ()
             | exception e ->
               (* the rewrite never landed: go back out of service rather
                  than pretend the promotion stuck *)
               Health.degrade sh.shealth ("repair rewrite failed: " ^ Printexc.to_string e);
               refresh_unhealthy store;
               raise e
           end
           | _ -> ());
           {
             r_shard = k;
             r_was = was;
             r_restored = !restored;
             r_replayed = !replayed;
             r_lost = lost;
             r_ms = (Unix.gettimeofday () -. t0) *. 1000.;
           }))

let repair_all store = List.filter_map (repair store) (List.init (nshards store) Fun.id)

type stats = {
  live : int;
  gc_count : int;
  stabilise_count : int;
  journal_depth : int;
  pending_ops : int;
  journal_replayed : int;
  compactions : int;
  recovered_torn_tail : bool;
  quarantined : int;
  io_retries : int;
  unsynced_batches : int;
  unhealthy_shards : int;
}

let stats store =
  {
    live = Heap.size store.heap;
    gc_count = store.gc_count;
    stabilise_count = store.stabilise_count;
    journal_depth = wal_depth store;
    pending_ops = pending_total store;
    journal_replayed = store.replayed;
    compactions = store.compactions;
    recovered_torn_tail = store.recovered_torn;
    quarantined = quarantined_total store;
    io_retries = store.io_retries;
    unsynced_batches = store.unsynced;
    unhealthy_shards = store.unhealthy;
  }

(* -- per-shard introspection ---------------------------------------------- *)

type shard_info = {
  shard : int;
  objects : int;
  quarantined : int;
  journal_bytes : int;
  pending_ops : int;
  remembered : int;
  state : string; (* "healthy" | "degraded" | "offline" *)
}

let shard_info store =
  let n = nshards store in
  let objects = Array.make n 0 in
  Heap.iter
    (fun oid _ ->
      let k = shard_ix_oid store oid in
      objects.(k) <- objects.(k) + 1)
    store.heap;
  List.init n (fun k ->
      let sh = store.shards.(k) in
      {
        shard = k;
        objects = objects.(k);
        quarantined = Quarantine.size sh.sq;
        journal_bytes =
          (match sh.swal with
          | Some w -> Journal.position w - Journal.header_size
          | None -> 0);
        pending_ops = sh.spending_count;
        remembered = Oid.Set.cardinal sh.sremembered;
        state = Health.state_name (Health.state sh.shealth);
      })

(* -- transactions ---------------------------------------------------------- *)

let clear_pins store = store.pins <- []

let restore_contents store (restored : Image.contents) =
  bump_epoch store;
  Heap.replace_all store.heap ~from:restored.Image.heap;
  Roots.replace_all store.roots ~from:restored.Image.roots;
  Hashtbl.reset store.blobs;
  Hashtbl.iter (Hashtbl.replace store.blobs) restored.Image.blobs;
  Array.iter
    (fun sh ->
      Quarantine.replace_all sh.sq ~from:(Quarantine.create ());
      (* The rollback replaced objects wholesale; recorded checksums no
         longer describe the live entries. *)
      Oid.Table.reset sh.scrcs)
    store.shards;
  distribute_quarantine store restored.Image.quarantine

(* Run [f] with whole-store rollback: on an exception the heap, roots and
   blobs are restored to their state at entry (oids included) and the
   exception is returned.

   A journalled, backed, single-shard store aborts by recovery instead of
   by snapshot: the journal is truncated to its entry savepoint and the
   pre-transaction state is rebuilt from the image plus the journal plus
   the entry-time pending ops — O(committed delta), not O(store).  Stores
   the journal cannot describe (snapshot mode, unstabilised, dirtied by
   gc/direct heap surgery, or sharded — where entry state spans several
   files) pay the original full-image snapshot. *)
let with_rollback store f =
  (* Rolling shared state back out from under a pinned snapshot would
     falsify it (and the versions/stamps describing it). *)
  if sessions_open store then
    invalid_arg
      "Store.with_rollback: open snapshot sessions would observe the rollback; commit or abort \
       them first";
  let journal_restore =
    nshards store = 1
    && journalling store
    && (s0 store).swal <> None
    && (not store.needs_full)
    && store.backing <> None
  in
  store.rollback_depth <- store.rollback_depth + 1;
  let leave () = store.rollback_depth <- store.rollback_depth - 1 in
  if journal_restore then begin
    let sh = s0 store in
    let wal = Option.get sh.swal in
    let saved_pending = sh.spending in
    let saved_count = sh.spending_count in
    let mark = Journal.position wal in
    let mark_depth = Journal.depth wal in
    match f () with
    | result ->
      leave ();
      Ok result
    | exception e ->
      (* Anything the transaction managed to stabilise sits past the
         savepoint; cut it off, then rebuild entry-time state by the same
         path crash recovery takes. *)
      Journal.truncate_to wal ~pos:mark ~depth:mark_depth;
      let path = Option.get store.backing in
      let restored = Image.load path in
      (match Journal.read (Journal.path_for path) with
      | Some replay ->
        List.iter
          (fun (op, _) ->
            Journal.apply op restored.Image.heap restored.Image.roots restored.Image.blobs)
          replay.Journal.records
      | None -> ());
      List.iter
        (fun op -> Journal.apply op restored.Image.heap restored.Image.roots restored.Image.blobs)
        (List.rev saved_pending);
      restore_contents store restored;
      sh.spending <- saved_pending;
      sh.spending_count <- saved_count;
      store.needs_full <- false;
      leave ();
      Error e
  end
  else begin
    let snapshot = Image.encode (contents store) in
    let saved = Array.map (fun sh -> (sh.spending, sh.spending_count)) store.shards in
    match f () with
    | result ->
      leave ();
      Ok result
    | exception e ->
      restore_contents store (Image.decode snapshot);
      Array.iteri
        (fun k sh ->
          let pending, count = saved.(k) in
          sh.spending <- pending;
          sh.spending_count <- count)
        store.shards;
      leave ();
      Error e
  end

(* -- sessions: the handle-first surface ------------------------------------

   [Session.t] is the unit of isolation.  Two kinds share the handle:

   - the implicit DEFAULT session ([default_session]), through which
     every legacy single-owner call below routes: its operations pass
     straight through to the shared state, exactly as they always did;

   - SNAPSHOT sessions ([open_session]): each pins the committed-write
     epoch at open, reads a byte-stable view of that instant (plus its
     own writes), buffers every write privately, and publishes them all
     at once at [Session.commit] — replayed through the store's normal
     guarded mutation path and made durable through the group-commit
     journal.  First committer wins: a commit whose write set overlaps
     anything committed after its snapshot raises the typed
     [Failure.Commit_conflict] and aborts, touching nothing. *)

(* The commit barrier: on a journalled, backed store a committed delta
   must be durable before control returns — a cheap journal fsync, not a
   full image write.  Snapshot-mode and unbacked stores stabilise when
   the owner chooses, as they always have. *)
let commit_barrier store =
  match store.durability, store.backing with
  | Journalled, Some _ -> stabilise store
  | (Journalled | Snapshot), _ -> ()

module Session = struct
  type nonrec t = session

  let id s = s.s_id
  let store s = s.s_store

  let is_snapshot s =
    match s.s_kind with
    | Direct -> false
    | Snapshot_session _ -> true

  let snapshot_epoch s =
    match s.s_kind with
    | Direct -> s.s_store.mvcc.commit_seq
    | Snapshot_session e -> e

  let state s = s.s_state
  let is_open s = s.s_state = `Live
  let buffered_ops s = s.s_nops

  let check_live s ctx =
    match s.s_state with
    | `Live -> ()
    | `Committed ->
      invalid_arg (Printf.sprintf "Store.Session.%s: session %d already committed" ctx s.s_id)
    | `Aborted ->
      invalid_arg (Printf.sprintf "Store.Session.%s: session %d already aborted" ctx s.s_id)

  (* -- snapshot reads ----------------------------------------------------- *)

  let dangling oid =
    raise (Heap.Heap_error (Format.asprintf "dangling reference %a" Oid.pp oid))

  (* How a snapshot session sees one oid: its own overlay first
     (read-your-writes), then the version chains, then the live heap. *)
  let resolved s snap oid =
    match Oid.Table.find_opt s.s_overlay oid with
    | Some e -> Some e
    | None -> snapshot_entry s.s_store snap oid

  let resolved_root s snap name =
    match Hashtbl.find_opt s.s_root_over name with
    | Some v -> v
    | None -> snapshot_root_value s.s_store snap name

  let resolved_blob s snap key =
    match Hashtbl.find_opt s.s_blob_over key with
    | Some v -> v
    | None -> snapshot_blob_value s.s_store snap key

  let get s oid =
    match s.s_kind with
    | Direct -> get s.s_store oid
    | Snapshot_session snap -> (
      check_live s "get";
      Obs.incr s.s_store.obs Obs.Get;
      check_q s.s_store oid;
      match resolved s snap oid with
      | Some e -> e
      | None -> dangling oid)

  let find s oid =
    match s.s_kind with
    | Direct -> find s.s_store oid
    | Snapshot_session snap ->
      check_live s "find";
      Obs.incr s.s_store.obs Obs.Get;
      if Quarantine.mem (shard_oid s.s_store oid).sq oid then None else resolved s snap oid

  let is_live s oid =
    match s.s_kind with
    | Direct -> is_live s.s_store oid
    | Snapshot_session snap -> resolved s snap oid <> None

  let entry_record oid = function
    | Heap.Record r -> r
    | Heap.Array _ | Heap.Str _ | Heap.Weak _ ->
      raise (Heap.Heap_error (Format.asprintf "%a is not a record" Oid.pp oid))

  let entry_array oid = function
    | Heap.Array a -> a
    | Heap.Record _ | Heap.Str _ | Heap.Weak _ ->
      raise (Heap.Heap_error (Format.asprintf "%a is not an array" Oid.pp oid))

  let get_record s oid =
    match s.s_kind with
    | Direct -> get_record s.s_store oid
    | Snapshot_session _ -> entry_record oid (get s oid)

  let get_array s oid =
    match s.s_kind with
    | Direct -> get_array s.s_store oid
    | Snapshot_session _ -> entry_array oid (get s oid)

  let get_string s oid =
    match s.s_kind with
    | Direct -> get_string s.s_store oid
    | Snapshot_session _ -> (
      match get s oid with
      | Heap.Str str -> str
      | Heap.Record _ | Heap.Array _ | Heap.Weak _ ->
        raise (Heap.Heap_error (Format.asprintf "%a is not a string" Oid.pp oid)))

  let get_weak s oid =
    match s.s_kind with
    | Direct -> get_weak s.s_store oid
    | Snapshot_session _ -> (
      match get s oid with
      | Heap.Weak c -> c
      | Heap.Record _ | Heap.Array _ | Heap.Str _ ->
        raise (Heap.Heap_error (Format.asprintf "%a is not a weak cell" Oid.pp oid)))

  let class_of s oid =
    match s.s_kind with
    | Direct -> class_of s.s_store oid
    | Snapshot_session _ -> (
      match get s oid with
      | Heap.Record r -> r.Heap.class_name
      | Heap.Array a -> a.Heap.elem_type ^ "[]"
      | Heap.Str _ -> "java.lang.String"
      | Heap.Weak _ -> "pstore.WeakReference")

  let field s oid idx =
    match s.s_kind with
    | Direct -> field s.s_store oid idx
    | Snapshot_session _ ->
      let r = entry_record oid (get s oid) in
      if idx < 0 || idx >= Array.length r.Heap.fields then
        raise
          (Heap.Heap_error
             (Format.asprintf "field index %d out of range for %a (%s)" idx Oid.pp oid
                r.Heap.class_name));
      r.Heap.fields.(idx)

  let elem s oid idx =
    match s.s_kind with
    | Direct -> elem s.s_store oid idx
    | Snapshot_session _ ->
      let a = entry_array oid (get s oid) in
      if idx < 0 || idx >= Array.length a.Heap.elems then
        raise
          (Heap.Heap_error
             (Format.asprintf "array index %d out of bounds (length %d)" idx
                (Array.length a.Heap.elems)));
      a.Heap.elems.(idx)

  let array_length s oid =
    match s.s_kind with
    | Direct -> array_length s.s_store oid
    | Snapshot_session _ -> Array.length (entry_array oid (get s oid)).Heap.elems

  let string_value s v =
    match s.s_kind with
    | Direct -> string_value s.s_store v
    | Snapshot_session _ -> (
      match v with
      | Pvalue.Ref oid -> get_string s oid
      | v ->
        raise (Heap.Heap_error ("expected a string reference, got " ^ Pvalue.to_string v)))

  let try_get s oid =
    match s.s_kind with
    | Direct -> try_get s.s_store oid
    | Snapshot_session snap -> (
      check_live s "try_get";
      note_read s.s_store oid;
      Obs.incr s.s_store.obs Obs.Get;
      match Quarantine.find (shard_oid s.s_store oid).sq oid with
      | Some reason ->
        Obs.incr s.s_store.obs Obs.Quarantine_hit;
        Error (Failure.Quarantined { oid; reason })
      | None -> (
        match resolved s snap oid with
        | Some entry -> Ok entry
        | None -> Error (Failure.Dangling oid)))

  let try_field s oid idx =
    match s.s_kind with
    | Direct -> try_field s.s_store oid idx
    | Snapshot_session _ -> (
      match try_get s oid with
      | Error e -> Error e
      | Ok (Heap.Record r) when idx >= 0 && idx < Array.length r.Heap.fields ->
        Ok r.Heap.fields.(idx)
      | Ok entry ->
        let container =
          match entry with
          | Heap.Record r -> r.Heap.class_name
          | Heap.Array a -> a.Heap.elem_type ^ "[]"
          | Heap.Str _ -> "string"
          | Heap.Weak _ -> "weak cell"
        in
        Error (Failure.Bad_index { container; index = idx }))

  let root s name =
    match s.s_kind with
    | Direct -> root s.s_store name
    | Snapshot_session snap ->
      check_live s "root";
      Obs.incr s.s_store.obs Obs.Root_lookup;
      resolved_root s snap name

  let root_names s =
    match s.s_kind with
    | Direct -> root_names s.s_store
    | Snapshot_session snap ->
      check_live s "root_names";
      let tbl = Hashtbl.create 32 in
      List.iter (fun n -> Hashtbl.replace tbl n ()) (Roots.names s.s_store.roots);
      Hashtbl.iter (fun n _ -> Hashtbl.replace tbl n ()) s.s_store.mvcc.root_versions;
      Hashtbl.iter (fun n _ -> Hashtbl.replace tbl n ()) s.s_root_over;
      Hashtbl.fold (fun n () acc -> if resolved_root s snap n <> None then n :: acc else acc) tbl []
      |> List.sort String.compare

  let blob s key =
    match s.s_kind with
    | Direct -> blob s.s_store key
    | Snapshot_session snap ->
      check_live s "blob";
      Obs.incr s.s_store.obs Obs.Get;
      resolved_blob s snap key

  let blob_keys s =
    match s.s_kind with
    | Direct -> blob_keys s.s_store
    | Snapshot_session snap ->
      check_live s "blob_keys";
      let tbl = Hashtbl.create 32 in
      Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) s.s_store.blobs;
      Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) s.s_store.mvcc.blob_versions;
      Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) s.s_blob_over;
      Hashtbl.fold (fun k () acc -> if resolved_blob s snap k <> None then k :: acc else acc) tbl []
      |> List.sort String.compare

  (* -- buffered writes ---------------------------------------------------- *)

  let push_op s op =
    s.s_ops <- op :: s.s_ops;
    s.s_nops <- s.s_nops + 1

  (* A snapshot write mutates a private copy of the object: the session's
     own allocation, or a copy-on-write of the visible entry (which also
     enrols the oid in the write set for conflict detection). *)
  let overlay_entry s oid =
    match Oid.Table.find_opt s.s_overlay oid with
    | Some e -> e
    | None -> (
      let snap =
        match s.s_kind with
        | Snapshot_session e -> e
        | Direct -> assert false
      in
      match snapshot_entry s.s_store snap oid with
      | Some e ->
        let copy = Journal.copy_entry e in
        Oid.Table.replace s.s_overlay oid copy;
        s.s_written <- Oid.Set.add oid s.s_written;
        copy
      | None -> dangling oid)

  let set_field s oid idx v =
    match s.s_kind with
    | Direct -> set_field s.s_store oid idx v
    | Snapshot_session _ ->
      check_live s "set_field";
      Obs.incr s.s_store.obs Obs.Set;
      check_q s.s_store oid;
      let r = entry_record oid (overlay_entry s oid) in
      if idx < 0 || idx >= Array.length r.Heap.fields then
        raise
          (Heap.Heap_error
             (Format.asprintf "field index %d out of range for %a (%s)" idx Oid.pp oid
                r.Heap.class_name));
      r.Heap.fields.(idx) <- v;
      push_op s (Journal.Set_field (oid, idx, v))

  let set_elem s oid idx v =
    match s.s_kind with
    | Direct -> set_elem s.s_store oid idx v
    | Snapshot_session _ ->
      check_live s "set_elem";
      Obs.incr s.s_store.obs Obs.Set;
      check_q s.s_store oid;
      let a = entry_array oid (overlay_entry s oid) in
      if idx < 0 || idx >= Array.length a.Heap.elems then
        raise
          (Heap.Heap_error
             (Format.asprintf "array index %d out of bounds (length %d)" idx
                (Array.length a.Heap.elems)));
      a.Heap.elems.(idx) <- v;
      push_op s (Journal.Set_elem (oid, idx, v))

  (* Session allocations reserve their oid from the shared allocator (so
     concurrent sessions and direct allocs never collide) but the entry
     lives only in the overlay until commit.  An aborted session's
     reserved oids are simply never used — the allocator is monotone. *)
  let reserve_oid store =
    let n = Heap.next_oid store.heap in
    Heap.set_next_oid store.heap (n + 1);
    Oid.of_int n

  let session_alloc s label entry =
    check_live s "alloc";
    Obs.span s.s_store.obs Obs.Alloc ~label (fun () ->
        let oid = reserve_oid s.s_store in
        Oid.Table.replace s.s_overlay oid entry;
        s.s_allocated <- Oid.Set.add oid s.s_allocated;
        push_op s (Journal.Alloc (oid, entry));
        oid)

  let alloc_record s class_name fields =
    match s.s_kind with
    | Direct -> alloc_record s.s_store class_name fields
    | Snapshot_session _ -> session_alloc s class_name (Heap.Record { Heap.class_name; fields })

  let alloc_array s elem_type elems =
    match s.s_kind with
    | Direct -> alloc_array s.s_store elem_type elems
    | Snapshot_session _ -> session_alloc s elem_type (Heap.Array { Heap.elem_type; elems })

  let alloc_string s str =
    match s.s_kind with
    | Direct -> alloc_string s.s_store str
    | Snapshot_session _ -> session_alloc s "string" (Heap.Str str)

  let alloc_weak s target =
    match s.s_kind with
    | Direct -> alloc_weak s.s_store target
    | Snapshot_session _ -> session_alloc s "weak" (Heap.Weak { Heap.target })

  let set_root s name v =
    match s.s_kind with
    | Direct -> set_root s.s_store name v
    | Snapshot_session _ ->
      check_live s "set_root";
      Obs.incr s.s_store.obs Obs.Set;
      Hashtbl.replace s.s_root_over name (Some v);
      push_op s (Journal.Set_root (name, v))

  let remove_root s name =
    match s.s_kind with
    | Direct -> remove_root s.s_store name
    | Snapshot_session _ ->
      check_live s "remove_root";
      Obs.incr s.s_store.obs Obs.Set;
      Hashtbl.replace s.s_root_over name None;
      push_op s (Journal.Remove_root name)

  let set_blob s key data =
    match s.s_kind with
    | Direct -> set_blob s.s_store key data
    | Snapshot_session _ ->
      check_live s "set_blob";
      Obs.incr s.s_store.obs Obs.Set;
      Hashtbl.replace s.s_blob_over key (Some data);
      push_op s (Journal.Set_blob (key, data))

  let remove_blob s key =
    match s.s_kind with
    | Direct -> remove_blob s.s_store key
    | Snapshot_session _ ->
      check_live s "remove_blob";
      Obs.incr s.s_store.obs Obs.Set;
      Hashtbl.replace s.s_blob_over key None;
      push_op s (Journal.Remove_blob key)

  let write_set s =
    let keys =
      List.sort_uniq String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) s.s_root_over []
        @ Hashtbl.fold (fun k _ acc -> k :: acc) s.s_blob_over [])
    in
    (Oid.Set.elements s.s_written, keys)

  (* -- close-out: commit / abort ------------------------------------------ *)

  let unpin s final_state =
    let m = s.s_store.mvcc in
    s.s_state <- final_state;
    m.open_sessions <- List.filter (fun o -> o != s) m.open_sessions;
    if m.open_sessions = [] then begin
      (* no snapshot can observe old versions any more *)
      Oid.Table.reset m.versions;
      Oid.Table.reset m.vstamps;
      Hashtbl.reset m.root_versions;
      Hashtbl.reset m.root_stamps;
      Hashtbl.reset m.blob_versions;
      Hashtbl.reset m.blob_stamps
    end

  let drop_buffer s =
    Oid.Table.reset s.s_overlay;
    Hashtbl.reset s.s_root_over;
    Hashtbl.reset s.s_blob_over;
    s.s_ops <- [];
    s.s_nops <- 0

  let abort s =
    match s.s_kind with
    | Direct -> invalid_arg "Store.Session.abort: the default session has no buffered writes"
    | Snapshot_session _ ->
      check_live s "abort";
      (* no journal residue by construction: nothing ever left the buffer *)
      drop_buffer s;
      unpin s `Aborted

  let conflicts s snap =
    let m = s.s_store.mvcc in
    let oids =
      Oid.Set.fold
        (fun oid acc ->
          match Oid.Table.find_opt m.vstamps oid with
          | Some e when e > snap -> oid :: acc
          | _ -> acc)
        s.s_written []
      |> List.sort Oid.compare
    in
    let key_conflicts stamps over =
      Hashtbl.fold
        (fun key _ acc ->
          match Hashtbl.find_opt stamps key with
          | Some e when e > snap -> key :: acc
          | _ -> acc)
        over []
    in
    let keys =
      List.sort_uniq String.compare
        (key_conflicts m.root_stamps s.s_root_over @ key_conflicts m.blob_stamps s.s_blob_over)
    in
    (oids, keys)

  (* Refuse the whole commit before touching shared state: shard health,
     quarantine and dangling targets are checked for every buffered op
     up front, so a refused commit leaves the heap and the journal
     untouched and the session live for a later retry. *)
  let validate_ops s =
    let store = s.s_store in
    List.iter
      (fun op ->
        match op with
        | Journal.Alloc (oid, _) -> guard_write_oid store oid
        | Journal.Set_field (oid, _, _) | Journal.Set_elem (oid, _, _) ->
          guard_write_oid store oid;
          if not (Oid.Set.mem oid s.s_allocated) then begin
            check_q store oid;
            if not (Heap.is_live store.heap oid) then dangling oid
          end
        | Journal.Set_root (key, _)
        | Journal.Remove_root key
        | Journal.Set_blob (key, _)
        | Journal.Remove_blob key -> guard_write_key store key)
      (List.rev s.s_ops)

  (* Publish one buffered op: capture the pre-image for the sessions that
     remain open, stamp the target with the commit epoch, mutate, and
     hand the op to the journal buffer exactly like a direct write. *)
  let apply_op store epoch op =
    (match op with
    | Journal.Alloc (oid, entry) ->
      capture_oid store epoch oid ~pre_image:false;
      Obs.incr store.obs Obs.Alloc;
      Heap.insert store.heap oid (Journal.copy_entry entry);
      invalidate_crc store oid
    | Journal.Set_field (oid, idx, v) ->
      capture_oid store epoch oid ~pre_image:true;
      Obs.incr store.obs Obs.Set;
      Heap.set_field store.heap oid idx v;
      invalidate_crc store oid
    | Journal.Set_elem (oid, idx, v) ->
      capture_oid store epoch oid ~pre_image:true;
      Obs.incr store.obs Obs.Set;
      Heap.set_elem store.heap oid idx v;
      invalidate_crc store oid
    | Journal.Set_root (key, v) ->
      capture_key store.mvcc.root_versions store.mvcc.root_stamps epoch key (fun () ->
          Roots.find store.roots key);
      Obs.incr store.obs Obs.Set;
      Roots.set store.roots key v
    | Journal.Remove_root key ->
      capture_key store.mvcc.root_versions store.mvcc.root_stamps epoch key (fun () ->
          Roots.find store.roots key);
      Obs.incr store.obs Obs.Set;
      Roots.remove store.roots key
    | Journal.Set_blob (key, data) ->
      capture_key store.mvcc.blob_versions store.mvcc.blob_stamps epoch key (fun () ->
          Hashtbl.find_opt store.blobs key);
      Obs.incr store.obs Obs.Set;
      Hashtbl.replace store.blobs key data
    | Journal.Remove_blob key ->
      capture_key store.mvcc.blob_versions store.mvcc.blob_stamps epoch key (fun () ->
          Hashtbl.find_opt store.blobs key);
      Obs.incr store.obs Obs.Set;
      Hashtbl.remove store.blobs key);
    if journalling store then record store op

  let commit s =
    match s.s_kind with
    | Direct -> commit_barrier s.s_store
    | Snapshot_session snap ->
      check_live s "commit";
      let store = s.s_store in
      seal_epoch store;
      let oids, keys = conflicts s snap in
      if oids <> [] || keys <> [] then begin
        Obs.incr store.obs Obs.Conflict;
        let session = s.s_id in
        (* the first committer won: abort, then hand the caller the clash
           set so it can retry against the new state *)
        drop_buffer s;
        unpin s `Aborted;
        raise (Failure.Commit_conflict { session; oids; keys })
      end;
      validate_ops s;
      let ops = List.rev s.s_ops in
      Obs.span store.obs Obs.Session_commit
        ~label:(Printf.sprintf "session %d" s.s_id)
        (fun () ->
          (if ops <> [] then begin
             let epoch = store.mvcc.commit_seq + 1 in
             List.iter (apply_op store epoch) ops;
             store.mvcc.commit_seq <- epoch;
             (* committed writes invalidate side caches: the registry's
                getLink memo revalidates against this epoch *)
             bump_epoch store
           end);
          drop_buffer s;
          unpin s `Committed;
          if ops <> [] then commit_barrier store)

  (* -- snapshot introspection --------------------------------------------- *)

  let live_count s =
    match s.s_kind with
    | Direct -> Heap.size s.s_store.heap
    | Snapshot_session snap ->
      (* no entry is ever removed while sessions are open (GC is gated),
         so the visible set is a subset of the live heap *)
      let n = ref 0 in
      Heap.iter
        (fun oid _ -> if snapshot_entry s.s_store snap oid <> None then incr n)
        s.s_store.heap;
      !n

  let stats s =
    match s.s_kind with
    | Direct -> stats s.s_store
    | Snapshot_session _ -> { (stats s.s_store) with live = live_count s }

  (* The session's full visible state as store contents — the same shape
     [Store.contents] has, so [Image.encode] fingerprints a snapshot
     byte-stably however much the shared store moves on. *)
  let snapshot_contents s =
    match s.s_kind with
    | Direct -> contents s.s_store
    | Snapshot_session snap ->
      check_live s "snapshot_contents";
      let store = s.s_store in
      let heap' = Heap.create () in
      let top = ref 0 in
      Heap.iter
        (fun oid _ ->
          match snapshot_entry store snap oid with
          | Some e ->
            Heap.insert heap' oid (Journal.copy_entry e);
            if Oid.to_int oid >= !top then top := Oid.to_int oid + 1
          | None -> ())
        store.heap;
      if !top > Heap.next_oid heap' then Heap.set_next_oid heap' !top;
      let roots' = Roots.create () in
      List.iter
        (fun n ->
          match snapshot_root_value store snap n with
          | Some v -> Roots.set roots' n v
          | None -> ())
        (let tbl = Hashtbl.create 32 in
         List.iter (fun n -> Hashtbl.replace tbl n ()) (Roots.names store.roots);
         Hashtbl.iter (fun n _ -> Hashtbl.replace tbl n ()) store.mvcc.root_versions;
         Hashtbl.fold (fun n () acc -> n :: acc) tbl []);
      let blobs' = Hashtbl.create 16 in
      let blob_keys =
        let tbl = Hashtbl.create 32 in
        Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) store.blobs;
        Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) store.mvcc.blob_versions;
        Hashtbl.fold (fun k () acc -> k :: acc) tbl []
      in
      List.iter
        (fun k ->
          match snapshot_blob_value store snap k with
          | Some data -> Hashtbl.replace blobs' k data
          | None -> ())
        blob_keys;
      let quarantine = Quarantine.create () in
      Array.iter
        (fun sh ->
          List.iter (fun (oid, r) -> Quarantine.add quarantine oid r) (Quarantine.to_list sh.sq))
        store.shards;
      { Image.heap = heap'; roots = roots'; blobs = blobs'; quarantine }

  (* -- the single-owner transaction --------------------------------------- *)

  (* Run [f] against the shared store with whole-store rollback on
     exception, then pay the commit barrier on success.  This is the
     commit/abort notion [Hyperprog.Transaction] wraps: an atomic block
     over the default session, not a snapshot session (it sees and
     mutates live state, and concurrent snapshot sessions are refused by
     [with_rollback]). *)
  let atomically store f =
    match with_rollback store f with
    | Ok v ->
      commit_barrier store;
      Ok v
    | Error _ as e -> e
end

let fresh_session store ~id kind =
  {
    s_id = id;
    s_store = store;
    s_kind = kind;
    s_overlay = Oid.Table.create 16;
    s_root_over = Hashtbl.create 8;
    s_blob_over = Hashtbl.create 8;
    s_ops = [];
    s_nops = 0;
    s_written = Oid.Set.empty;
    s_allocated = Oid.Set.empty;
    s_state = `Live;
  }

(* Pin a snapshot of the committed state as of now.  Any unsealed direct
   writes are sealed first, so the new session's epoch cleanly separates
   "before open" from "after open". *)
let open_session store =
  let m = store.mvcc in
  seal_epoch store;
  let s = fresh_session store ~id:m.next_session_id (Snapshot_session m.commit_seq) in
  m.next_session_id <- m.next_session_id + 1;
  m.open_sessions <- s :: m.open_sessions;
  s

(* The implicit default session (id 0): the handle the legacy
   single-owner calls below route through. *)
let default_session store =
  match store.mvcc.implicit with
  | Some s -> s
  | None ->
    let s = fresh_session store ~id:0 Direct in
    store.mvcc.implicit <- Some s;
    s

(* -- the legacy single-owner surface ---------------------------------------

   Thin wrappers over the implicit default session.  Each is exactly one
   kind-dispatch away from the direct implementation above; code that
   owns a store alone keeps its old API, code that shares one opens
   sessions. *)

let set_root store name v = Session.set_root (default_session store) name v
let root store name = Session.root (default_session store) name
let remove_root store name = Session.remove_root (default_session store) name
let root_names store = Session.root_names (default_session store)
let alloc_record store class_name fields = Session.alloc_record (default_session store) class_name fields
let alloc_array store elem_type elems = Session.alloc_array (default_session store) elem_type elems
let alloc_string store s = Session.alloc_string (default_session store) s
let alloc_weak store target = Session.alloc_weak (default_session store) target
let get store oid = Session.get (default_session store) oid
let find store oid = Session.find (default_session store) oid
let is_live store oid = Session.is_live (default_session store) oid
let class_of store oid = Session.class_of (default_session store) oid
let get_record store oid = Session.get_record (default_session store) oid
let get_array store oid = Session.get_array (default_session store) oid
let get_string store oid = Session.get_string (default_session store) oid
let get_weak store oid = Session.get_weak (default_session store) oid
let field store oid idx = Session.field (default_session store) oid idx
let set_field store oid idx v = Session.set_field (default_session store) oid idx v
let elem store oid idx = Session.elem (default_session store) oid idx
let set_elem store oid idx v = Session.set_elem (default_session store) oid idx v
let array_length store oid = Session.array_length (default_session store) oid
let try_get store oid = Session.try_get (default_session store) oid
let try_field store oid idx = Session.try_field (default_session store) oid idx
let set_blob store key data = Session.set_blob (default_session store) key data
let blob store key = Session.blob (default_session store) key
let remove_blob store key = Session.remove_blob (default_session store) key
let blob_keys store = Session.blob_keys (default_session store)
let string_value store v = Session.string_value (default_session store) v
