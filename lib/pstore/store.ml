(* The store facade: a heap, named roots, and a blob table, with
   stabilisation to a backing file.  This plays the role PJama plays in the
   paper: the environment in which programs are composed, stored and
   executed.

   The store is also where higher layers register "pins": transient strong
   roots contributed by a running VM (static fields, stack frames) that the
   garbage collector must honour even though they are not named roots.

   Durability comes in two modes.  [Snapshot] (the default) rewrites the
   whole image on every stabilise.  [Journalled] pairs the image with a
   write-ahead journal: mutations made through this module are buffered as
   journal ops, stabilise appends and fsyncs just the delta, and the image
   is rewritten only at compaction points (first stabilise, journal over
   the compaction limit, or after operations the journal cannot express —
   a GC sweep, or direct heap surgery flagged via [mark_dirty]).

   Every operation is counted through the store's [Obs.t].  Counting is a
   single array increment; latency timing and trace events only happen
   when tracing is enabled, so the hot accessors below branch on
   [Obs.enabled] explicitly rather than paying a closure on the untraced
   path. *)

type durability =
  | Snapshot
  | Journalled

type t = {
  heap : Heap.t;
  roots : Roots.t;
  blobs : (string, string) Hashtbl.t;
  quarantine : Quarantine.t; (* corrupt objects, isolated not fatal *)
  crcs : int32 Oid.Table.t; (* per-object checksums, primed by the scrubber *)
  scrub_state : Scrub.state;
  obs : Obs.t;
  props : Props.t; (* transient per-store state attached by higher layers *)
  mutable side_epoch : int; (* bumped on events that invalidate side caches *)
  mutable retry : Retry.policy option; (* transient-I/O retry, opt-in *)
  mutable io_retries : int;
  mutable backing : string option;
  mutable pins : (unit -> Oid.t list) list;
  mutable stabilise_count : int;
  mutable gc_count : int;
  mutable durability : durability;
  mutable wal : Journal.t option;
  mutable pending : Journal.op list; (* newest first *)
  mutable pending_count : int;
  mutable needs_full : bool; (* journal can't express state since last image *)
  mutable compaction_limit : int;
  mutable group_window : int; (* stabilises per fsync; 1 = every stabilise *)
  mutable unsynced : int; (* group-committed batches not yet fsynced *)
  mutable compactions : int;
  mutable replayed : int;
  mutable recovered_torn : bool;
  mutable rollback_depth : int; (* compaction is deferred inside with_rollback *)
}

let default_compaction_limit = 4096

module Config = struct
  type nonrec t = {
    durability : durability;
    compaction_limit : int;
    group_window : int;
    retry : Retry.policy option;
    backing : string option;
    trace_ring : int;
    tracing : bool;
  }

  let default =
    {
      durability = Snapshot;
      compaction_limit = default_compaction_limit;
      group_window = 1;
      retry = None;
      backing = None;
      trace_ring = Obs.default_ring_capacity;
      tracing = false;
    }
end

let make ?(obs = Obs.create ()) () =
  {
    heap = Heap.create ();
    roots = Roots.create ();
    blobs = Hashtbl.create 16;
    quarantine = Quarantine.create ();
    crcs = Oid.Table.create 64;
    scrub_state = Scrub.create ();
    obs;
    props = Props.create ();
    side_epoch = 0;
    retry = None;
    io_retries = 0;
    backing = None;
    pins = [];
    stabilise_count = 0;
    gc_count = 0;
    durability = Snapshot;
    wal = None;
    pending = [];
    pending_count = 0;
    needs_full = true;
    compaction_limit = default_compaction_limit;
    group_window = 1;
    unsynced = 0;
    compactions = 0;
    replayed = 0;
    recovered_torn = false;
    rollback_depth = 0;
  }

let heap store = store.heap
let roots store = store.roots
let obs store = store.obs
let props store = store.props

(* Side-cache invalidation: higher layers (the registry's getLink memo)
   stamp their cached entries with this epoch; any event that can change
   what a read observes without going through their own API — quarantine
   churn, a GC sweep, rollback, direct heap surgery — bumps it. *)
let invalidation_epoch store = store.side_epoch
let bump_epoch store = store.side_epoch <- store.side_epoch + 1

let backing store = store.backing
let set_backing store path = store.backing <- Some path

(* -- durability mode ------------------------------------------------------ *)

let durability store = store.durability

let journalling store =
  match store.durability with
  | Journalled -> true
  | Snapshot -> false

let close_wal store =
  match store.wal with
  | Some w ->
    (* An orderly close is a durability barrier: batches whose fsync was
       deferred by the group window must land before the handle goes. *)
    if store.unsynced > 0 then (try Journal.sync w with _ -> ());
    store.unsynced <- 0;
    Journal.close w;
    store.wal <- None
  | None -> ()

let set_durability store mode =
  if mode <> store.durability then begin
    (match mode with
    | Journalled ->
      (* The journal only describes mutations made while journalling, so
         the first stabilise must write a full image. *)
      store.needs_full <- true
    | Snapshot -> begin
      close_wal store;
      store.pending <- [];
      store.pending_count <- 0;
      match store.backing with
      | Some path when Sys.file_exists (Journal.path_for path) ->
        Sys.remove (Journal.path_for path)
      | _ -> ()
    end);
    store.durability <- mode
  end

let set_compaction_limit store n =
  if n < 0 then invalid_arg "Store.set_compaction_limit: negative";
  store.compaction_limit <- n

let group_window store = store.group_window

(* Group commit: with window n > 1, journalled stabilise coalesces each
   delta into one batch record and fsyncs only every n-th stabilise (and
   at compaction and close).  A crash can lose up to n-1 recent batches,
   but each lost batch vanishes whole — never a prefix of a delta. *)
let set_group_window store n =
  if n < 1 then invalid_arg "Store.set_group_window: window must be >= 1";
  store.group_window <- n

let set_retry_policy store policy = store.retry <- policy
let retry_policy store = store.retry

(* -- configuration --------------------------------------------------------- *)

let configure store (c : Config.t) =
  set_durability store c.Config.durability;
  set_compaction_limit store c.Config.compaction_limit;
  set_group_window store c.Config.group_window;
  store.retry <- c.Config.retry;
  (* [backing = None] leaves the current backing alone: store identity is
     not a tunable, and [open_file ?config] must not clear the path it
     just opened. *)
  (match c.Config.backing with Some p -> store.backing <- Some p | None -> ());
  if Obs.ring_capacity store.obs <> c.Config.trace_ring then
    Obs.set_ring_capacity store.obs c.Config.trace_ring;
  Obs.set_enabled store.obs c.Config.tracing

let config store : Config.t =
  {
    Config.durability = store.durability;
    compaction_limit = store.compaction_limit;
    group_window = store.group_window;
    retry = store.retry;
    backing = store.backing;
    trace_ring = Obs.ring_capacity store.obs;
    tracing = Obs.enabled store.obs;
  }

let create ?config () =
  let store = make () in
  Option.iter (configure store) config;
  store

let mark_dirty store =
  store.needs_full <- true;
  bump_epoch store;
  (* Direct heap surgery invalidates every recorded checksum; the
     scrubber re-primes them on its next pass. *)
  Oid.Table.reset store.crcs

let record store op =
  store.pending <- op :: store.pending;
  store.pending_count <- store.pending_count + 1

(* -- roots --------------------------------------------------------------- *)

let set_root store name v =
  Obs.incr store.obs Obs.Set;
  Roots.set store.roots name v;
  if journalling store then record store (Journal.Set_root (name, v))

let root store name =
  Obs.incr store.obs Obs.Root_lookup;
  Roots.find store.roots name

let remove_root store name =
  Obs.incr store.obs Obs.Set;
  Roots.remove store.roots name;
  if journalling store then record store (Journal.Remove_root name)

let root_names store = Roots.names store.roots

(* -- allocation & access ------------------------------------------------- *)

(* Allocations are journalled with a copy of the entry as allocated —
   a copy, because the live entry is mutable and the op may outlive
   arbitrary later mutations (rollback replays it).  Subsequent mutations
   arrive as their own records, so replay converges on the same final
   state in the same order. *)
let journal_alloc store oid =
  record store (Journal.Alloc (oid, Journal.copy_entry (Heap.get store.heap oid)))

let alloc_record store class_name fields =
  Obs.span store.obs Obs.Alloc ~label:class_name (fun () ->
      let oid = Heap.alloc_record store.heap class_name fields in
      if journalling store then journal_alloc store oid;
      oid)

let alloc_array store elem_type elems =
  Obs.span store.obs Obs.Alloc ~label:elem_type (fun () ->
      let oid = Heap.alloc_array store.heap elem_type elems in
      if journalling store then journal_alloc store oid;
      oid)

let alloc_string store s =
  Obs.span store.obs Obs.Alloc ~label:"string" (fun () ->
      let oid = Heap.alloc_string store.heap s in
      if journalling store then journal_alloc store oid;
      oid)

let alloc_weak store target =
  Obs.span store.obs Obs.Alloc ~label:"weak" (fun () ->
      let oid = Heap.alloc_weak store.heap target in
      if journalling store then journal_alloc store oid;
      oid)

(* Reads of a quarantined oid fail with the typed [Quarantined] error so
   callers can degrade gracefully instead of consuming corrupt state.
   One lookup: the reason doubles as the membership test. *)
let check_q store oid =
  match Quarantine.find store.quarantine oid with
  | Some reason ->
    Obs.incr store.obs Obs.Quarantine_hit;
    raise (Quarantine.Quarantined (oid, reason))
  | None -> ()

(* A mutation invalidates the object's recorded checksum; the scrubber
   re-primes it on its next pass (trust-on-first-scan — no per-write
   hashing cost on the hot path). *)
let invalidate_crc store oid = Oid.Table.remove store.crcs oid

let get store oid =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Get ~oid (fun () ->
        check_q store oid;
        Heap.get store.heap oid)
  else begin
    Obs.incr store.obs Obs.Get;
    check_q store oid;
    Heap.get store.heap oid
  end

let find store oid =
  Obs.incr store.obs Obs.Get;
  if Quarantine.mem store.quarantine oid then None else Heap.find store.heap oid

let is_live store oid = Heap.is_live store.heap oid

let class_of store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.class_of store.heap oid

let get_record store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_record store.heap oid

let get_array store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_array store.heap oid

let get_string store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_string store.heap oid

let get_weak store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.get_weak store.heap oid

let field store oid idx =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Get ~oid (fun () ->
        check_q store oid;
        Heap.field store.heap oid idx)
  else begin
    Obs.incr store.obs Obs.Get;
    check_q store oid;
    Heap.field store.heap oid idx
  end

let set_field store oid idx v =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Set ~oid (fun () ->
        check_q store oid;
        Heap.set_field store.heap oid idx v;
        invalidate_crc store oid;
        if journalling store then record store (Journal.Set_field (oid, idx, v)))
  else begin
    Obs.incr store.obs Obs.Set;
    check_q store oid;
    Heap.set_field store.heap oid idx v;
    invalidate_crc store oid;
    if journalling store then record store (Journal.Set_field (oid, idx, v))
  end

let elem store oid idx =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Get ~oid (fun () ->
        check_q store oid;
        Heap.elem store.heap oid idx)
  else begin
    Obs.incr store.obs Obs.Get;
    check_q store oid;
    Heap.elem store.heap oid idx
  end

let set_elem store oid idx v =
  if Obs.enabled store.obs then
    Obs.span store.obs Obs.Set ~oid (fun () ->
        check_q store oid;
        Heap.set_elem store.heap oid idx v;
        invalidate_crc store oid;
        if journalling store then record store (Journal.Set_elem (oid, idx, v)))
  else begin
    Obs.incr store.obs Obs.Set;
    check_q store oid;
    Heap.set_elem store.heap oid idx v;
    invalidate_crc store oid;
    if journalling store then record store (Journal.Set_elem (oid, idx, v))
  end

let array_length store oid =
  Obs.incr store.obs Obs.Get;
  check_q store oid;
  Heap.array_length store.heap oid

(* -- salvage reads -------------------------------------------------------- *)

let try_get store oid =
  Obs.incr store.obs Obs.Get;
  match Quarantine.find store.quarantine oid with
  | Some reason ->
    Obs.incr store.obs Obs.Quarantine_hit;
    Error (Failure.Quarantined { oid; reason })
  | None -> begin
    match Heap.find store.heap oid with
    | Some entry -> Ok entry
    | None -> Error (Failure.Dangling oid)
  end

let try_field store oid idx =
  match try_get store oid with
  | Error e -> Error e
  | Ok entry -> begin
    match Heap.field store.heap oid idx with
    | v -> Ok v
    | exception Heap.Heap_error _ ->
      let container =
        match entry with
        | Heap.Record r -> r.Heap.class_name
        | Heap.Array a -> a.Heap.elem_type ^ "[]"
        | Heap.Str _ -> "string"
        | Heap.Weak _ -> "weak cell"
      in
      Error (Failure.Bad_index { container; index = idx })
  end

(* -- quarantine ----------------------------------------------------------- *)

(* Quarantine membership changes cannot be expressed as journal ops, so
   they force a full image at the next compaction point — which is also
   what persists the quarantine set across reopen. *)
let quarantine_oid store oid reason =
  Quarantine.add store.quarantine oid reason;
  invalidate_crc store oid;
  bump_epoch store;
  store.needs_full <- true

let clear_quarantine store oid =
  if Quarantine.mem store.quarantine oid then begin
    Quarantine.remove store.quarantine oid;
    bump_epoch store;
    store.needs_full <- true
  end

let quarantine_reason store oid = Quarantine.find store.quarantine oid
let is_quarantined store oid = Quarantine.mem store.quarantine oid
let quarantined store = Quarantine.to_list store.quarantine
let size store = Heap.size store.heap

(* Interned string allocation would be possible, but Java semantics gives
   distinct identity to non-literal strings; we allocate fresh. *)
let string_value store = function
  | Pvalue.Ref oid -> Heap.get_string store.heap oid
  | v ->
    raise (Heap.Heap_error ("expected a string reference, got " ^ Pvalue.to_string v))

(* -- blobs --------------------------------------------------------------- *)

let set_blob store key data =
  Obs.incr store.obs Obs.Set;
  Hashtbl.replace store.blobs key data;
  if journalling store then record store (Journal.Set_blob (key, data))

let blob store key =
  Obs.incr store.obs Obs.Get;
  Hashtbl.find_opt store.blobs key

let remove_blob store key =
  Obs.incr store.obs Obs.Set;
  Hashtbl.remove store.blobs key;
  if journalling store then record store (Journal.Remove_blob key)

let blob_keys store =
  Hashtbl.fold (fun k _ acc -> k :: acc) store.blobs [] |> List.sort String.compare

(* -- pins (transient strong roots) --------------------------------------- *)

let add_pin store f = store.pins <- f :: store.pins

let pinned_oids store = List.concat_map (fun f -> f ()) store.pins

(* -- GC & stabilisation -------------------------------------------------- *)

(* Quarantined objects that still have heap entries are kept across GC
   (corrupt data is evidence, and structure reachable only through them
   may still be salvageable), so they seed the mark alongside the pins.
   Quarantine records for already-dead oids contribute nothing. *)
let quarantine_roots store =
  List.filter (Heap.is_live store.heap) (List.map fst (Quarantine.to_list store.quarantine))

let gc store =
  Obs.span store.obs Obs.Gc (fun () ->
      store.gc_count <- store.gc_count + 1;
      bump_epoch store;
      (* A sweep removes objects and clears weak cells behind the journal's
         back; the next stabilise must therefore compact. *)
      if journalling store then store.needs_full <- true;
      let stats =
        Gc.collect
          ~extra_roots:(quarantine_roots store @ pinned_oids store)
          store.heap store.roots
      in
      (* Recorded checksums of swept objects are stale, and the sweep may
         have cleared weak-cell targets behind the checksum's back. *)
      let stale =
        Oid.Table.fold
          (fun oid _ acc ->
            match Heap.find store.heap oid with
            | None | Some (Heap.Weak _) -> oid :: acc
            | Some _ -> acc)
          store.crcs []
      in
      List.iter (Oid.Table.remove store.crcs) stale;
      stats)

let reachable store =
  Gc.reachable
    ~extra_roots:(quarantine_roots store @ pinned_oids store)
    store.heap store.roots

let contents store =
  {
    Image.heap = store.heap;
    roots = store.roots;
    blobs = store.blobs;
    quarantine = store.quarantine;
  }

(* -- scrubbing ------------------------------------------------------------ *)

let default_scrub_budget = 256

let scrub ?(budget = default_scrub_budget) store =
  Obs.span store.obs Obs.Scrub_step (fun () ->
      let report =
        Scrub.step store.scrub_state ~heap:store.heap ~crcs:store.crcs
          ~quarantine:store.quarantine ~budget
      in
      if report.Scrub.newly_quarantined <> [] then begin
        store.needs_full <- true;
        bump_epoch store
      end;
      report)

let scrub_progress store = store.scrub_state

let wal_depth store =
  match store.wal with
  | Some w -> Journal.depth w
  | None -> 0

let compact store path =
  Obs.span store.obs Obs.Compaction (fun () ->
      close_wal store;
      let crc = Image.save ~obs:store.obs path (contents store) in
      (* The image now contains every pending effect; a crash before the new
         journal header lands leaves a stale journal (old base checksum) that
         recovery discards. *)
      store.pending <- [];
      store.pending_count <- 0;
      store.wal <- Some (Journal.create ~obs:store.obs (Journal.path_for path) ~base_crc:crc);
      store.needs_full <- false;
      store.unsynced <- 0;
      store.compactions <- store.compactions + 1)

(* One stabilisation attempt.  Both failure paths are idempotent, which
   is what makes the retry wrapper below safe: a failed journal append
   has already set [needs_full] (so a retry compacts instead of appending
   after torn bytes), and a failed compaction just rewrites the temp
   image from scratch. *)
let stabilise_once store path =
  match store.durability with
  | Snapshot -> ignore (Image.save ~obs:store.obs path (contents store) : int32)
  | Journalled ->
    let in_rollback = store.rollback_depth > 0 in
    let must_compact = store.needs_full || store.wal = None in
    let over_limit = wal_depth store + store.pending_count > store.compaction_limit in
    if must_compact && in_rollback then
      invalid_arg
        "Store.stabilise: store needs compaction inside with_rollback (after a gc or direct \
         heap surgery); stabilise before the transaction instead"
    else if must_compact || (over_limit && not in_rollback) then compact store path
    else begin
      (* Over the limit inside a transaction we keep appending: compaction
         cannot be undone by an abort, the next top-level stabilise does it. *)
      let wal = Option.get store.wal in
      match
        (* The delta rides as one batch record — atomic under a torn
           write.  With a group window, the fsync is amortised over
           [group_window] stabilises; a crash loses whole recent batches,
           never part of one. *)
        Journal.append_batch wal (List.rev store.pending);
        if store.unsynced + 1 >= store.group_window then begin
          Journal.sync wal;
          store.unsynced <- 0
        end
        else store.unsynced <- store.unsynced + 1
      with
      | () ->
        store.pending <- [];
        store.pending_count <- 0
      | exception e ->
        (* The journal tail is now suspect (possibly torn); recover by
           compacting next time rather than appending after garbage. *)
        store.needs_full <- true;
        raise e
    end

let stabilise ?path store =
  let path =
    match path, store.backing with
    | Some p, _ ->
      store.backing <- Some p;
      p
    | None, Some p -> p
    | None, None -> invalid_arg "Store.stabilise: no backing file"
  in
  store.stabilise_count <- store.stabilise_count + 1;
  let mode =
    match store.durability with
    | Snapshot -> "snapshot"
    | Journalled -> "journalled"
  in
  Obs.span store.obs Obs.Stabilise ~label:mode (fun () ->
      match store.retry with
      | None -> stabilise_once store path
      | Some policy ->
        Retry.run ~policy ~obs:store.obs ~label:"stabilise"
          ~on_retry:(fun _ _ -> store.io_retries <- store.io_retries + 1)
          (fun () -> stabilise_once store path))

let of_contents ?obs ?backing { Image.heap; roots; blobs; quarantine } =
  let base = make ?obs () in
  { base with heap; roots; blobs; quarantine; backing }

let open_file ?config path =
  let obs = Obs.create () in
  let contents, crc =
    try Image.load_with_crc ~obs path
    with (Image.Image_error _ | Codec.Decode_error _ | Sys_error _) as e -> begin
      (* A crash between writing and renaming a snapshot can leave a
         complete image under the temp name; promote it rather than fail. *)
      let tmp = path ^ ".tmp" in
      match (try Some (Image.load_with_crc ~obs tmp) with _ -> None) with
      | Some (c, crc) ->
        Faults.rename tmp path;
        (c, crc)
      | None -> raise e
    end
  in
  let store = of_contents ~obs ~backing:path contents in
  (match Journal.read (Journal.path_for path) with
  | Some replay when Int32.equal replay.Journal.base_crc crc ->
    List.iter
      (fun (op, _) -> Journal.apply op store.heap store.roots store.blobs)
      replay.Journal.records;
    store.replayed <- List.length replay.Journal.records;
    store.recovered_torn <- replay.Journal.torn;
    store.durability <- Journalled;
    store.wal <-
      Some
        (Journal.open_for_append ~obs (Journal.path_for path)
           ~valid_bytes:replay.Journal.valid_bytes ~depth:store.replayed);
    store.needs_full <- false
  | Some _ ->
    (* Stale journal: the image is newer (a compaction's journal reset
       never landed).  The image already holds every journalled effect. *)
    store.durability <- Journalled;
    store.needs_full <- true
  | None -> ());
  (* A salvage load quarantined objects the on-disk image does not yet
     record as such; force a compaction so the next stabilise persists
     the quarantine set. *)
  if not (Quarantine.is_empty store.quarantine) then store.needs_full <- true;
  (* An explicit configuration is applied last, so it wins over the
     recovered durability mode. *)
  Option.iter (configure store) config;
  store

(* Both [close] and [crash] are idempotent and safe on any durability
   mode: each drops the journal handle (a no-op when there is none, as in
   snapshot mode or after a previous close/crash).  [close] additionally
   seals a final observability snapshot and empties the trace ring;
   [crash] drops the ring without snapshotting, exactly as a process
   crash would lose in-flight trace state. *)
let close store =
  close_wal store;
  Obs.flush store.obs

let crash store =
  (match store.wal with
  | Some w -> Journal.crash w
  | None -> ());
  store.wal <- None;
  store.unsynced <- 0;
  Obs.drop store.obs

type stats = {
  live : int;
  gc_count : int;
  stabilise_count : int;
  journal_depth : int;
  pending_ops : int;
  journal_replayed : int;
  compactions : int;
  recovered_torn_tail : bool;
  quarantined : int;
  io_retries : int;
  unsynced_batches : int;
}

let stats store =
  {
    live = Heap.size store.heap;
    gc_count = store.gc_count;
    stabilise_count = store.stabilise_count;
    journal_depth = wal_depth store;
    pending_ops = store.pending_count;
    journal_replayed = store.replayed;
    compactions = store.compactions;
    recovered_torn_tail = store.recovered_torn;
    quarantined = Quarantine.size store.quarantine;
    io_retries = store.io_retries;
    unsynced_batches = store.unsynced;
  }

(* -- transactions ---------------------------------------------------------- *)

let clear_pins store = store.pins <- []

let restore_contents store (restored : Image.contents) =
  bump_epoch store;
  Heap.replace_all store.heap ~from:restored.Image.heap;
  Roots.replace_all store.roots ~from:restored.Image.roots;
  Hashtbl.reset store.blobs;
  Hashtbl.iter (Hashtbl.replace store.blobs) restored.Image.blobs;
  Quarantine.replace_all store.quarantine ~from:restored.Image.quarantine;
  (* The rollback replaced objects wholesale; recorded checksums no
     longer describe the live entries. *)
  Oid.Table.reset store.crcs

(* Run [f] with whole-store rollback: on an exception the heap, roots and
   blobs are restored to their state at entry (oids included) and the
   exception is returned.

   A journalled, backed store aborts by recovery instead of by snapshot:
   the journal is truncated to its entry savepoint and the pre-transaction
   state is rebuilt from the image plus the journal plus the entry-time
   pending ops — O(committed delta), not O(store).  Stores the journal
   cannot describe (snapshot mode, unstabilised, or dirtied by gc/direct
   heap surgery) pay the original full-image snapshot. *)
let with_rollback store f =
  let journal_restore =
    journalling store && store.wal <> None && (not store.needs_full)
    && store.backing <> None
  in
  store.rollback_depth <- store.rollback_depth + 1;
  let leave () = store.rollback_depth <- store.rollback_depth - 1 in
  if journal_restore then begin
    let wal = Option.get store.wal in
    let saved_pending = store.pending in
    let saved_count = store.pending_count in
    let mark = Journal.position wal in
    let mark_depth = Journal.depth wal in
    match f () with
    | result ->
      leave ();
      Ok result
    | exception e ->
      (* Anything the transaction managed to stabilise sits past the
         savepoint; cut it off, then rebuild entry-time state by the same
         path crash recovery takes. *)
      Journal.truncate_to wal ~pos:mark ~depth:mark_depth;
      let path = Option.get store.backing in
      let restored = Image.load path in
      (match Journal.read (Journal.path_for path) with
      | Some replay ->
        List.iter
          (fun (op, _) ->
            Journal.apply op restored.Image.heap restored.Image.roots restored.Image.blobs)
          replay.Journal.records
      | None -> ());
      List.iter
        (fun op -> Journal.apply op restored.Image.heap restored.Image.roots restored.Image.blobs)
        (List.rev saved_pending);
      restore_contents store restored;
      store.pending <- saved_pending;
      store.pending_count <- saved_count;
      store.needs_full <- false;
      leave ();
      Error e
  end
  else begin
    let snapshot = Image.encode (contents store) in
    let saved_pending = store.pending in
    let saved_count = store.pending_count in
    match f () with
    | result ->
      leave ();
      Ok result
    | exception e ->
      restore_contents store (Image.decode snapshot);
      store.pending <- saved_pending;
      store.pending_count <- saved_count;
      leave ();
      Error e
  end
