(** Referential-integrity checking.

    Verifies that no object, root or blob anchor contains a reference to
    a dead oid.  Quarantine-aware: references into the quarantine are
    reported as the distinct, non-fatal {!Quarantined_ref} kind, and the
    contents of quarantined holders are skipped (corrupt data proves
    nothing about the rest of the store). *)

type violation =
  | Dangling_ref of { holder : Oid.t option; slot : string; target : Oid.t }
  | Bad_root of { name : string; target : Oid.t }
  | Bad_weak_target of { holder : Oid.t; target : Oid.t }
      (** a weak cell whose target dangles (GC clears weak cells in the
          same pass that sweeps their targets, so this means corruption) *)
  | Quarantined_ref of { holder : Oid.t option; slot : string; target : Oid.t }
      (** a reference into the quarantine set — non-fatal, since readers
          already get a typed error *)
  | Bad_blob_anchor of { key : string; target : Oid.t }
      (** an oid-valued blob pointer (supplied via [?anchors]) that dangles *)

val pp_violation : Format.formatter -> violation -> unit

val fatal : violation -> bool
(** Everything except {!Quarantined_ref}. *)

val check : ?anchors:(string * Oid.t) list -> Store.t -> violation list
(** All violations found in the store (empty list means the store is
    sound).  [anchors] names oid-valued blob pointers maintained by
    higher layers (e.g. the registry's class-origin records). *)

val check_exn : ?anchors:(string * Oid.t) list -> Store.t -> unit
(** @raise Heap.Heap_error if any {e fatal} violation is found
    (quarantined references alone do not raise). *)
