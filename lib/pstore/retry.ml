(* Bounded retry with exponential backoff for transient I/O failures.

   Only exceptions that plausibly denote a transient environmental
   failure are retried: injected faults (the test stand-in for flaky
   media), [Sys_error] and [Unix_error].  Logic errors —
   [Invalid_argument], decode errors, integrity violations — propagate
   immediately: retrying them would only repeat the bug.

   Retrying a *stabilise* is safe because both of its failure paths are
   idempotent: a failed journal append marks the store as needing a full
   compaction (so the retry rewrites a fresh image instead of appending
   after torn bytes), and a failed compaction merely rewrites the temp
   image from scratch. *)

type policy = {
  retries : int; (* extra attempts after the first failure *)
  base_delay : float; (* seconds; doubles per retry *)
  max_delay : float;
}

let default_policy = { retries = 3; base_delay = 0.001; max_delay = 0.05 }

type stats = {
  attempts : int;
  retries : int;
  absorbed : int; (* operations that failed then eventually succeeded *)
  exhausted : int; (* operations that failed even after all retries *)
}

let zero = { attempts = 0; retries = 0; absorbed = 0; exhausted = 0 }
let global = ref zero

(* Per-label retry counters, for `shell health`. *)
let by_label : (string, int) Hashtbl.t = Hashtbl.create 8

let stats () = !global
let reset_stats () =
  global := zero;
  Hashtbl.reset by_label

let counters () =
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) by_label []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let transient = function
  | Faults.Fault_injected _ | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let bump f = global := f !global

let run ?(policy = default_policy) ?(on_retry = fun _ _ -> ()) ?obs ~label f =
  let rec attempt n =
    bump (fun g -> { g with attempts = g.attempts + 1 });
    match f () with
    | v ->
      if n > 0 then bump (fun g -> { g with absorbed = g.absorbed + 1 });
      v
    | exception e when transient e && n < policy.retries ->
      bump (fun g -> { g with retries = g.retries + 1 });
      (match obs with Some o -> Obs.incr o Obs.Retry | None -> ());
      Hashtbl.replace by_label label (1 + Option.value ~default:0 (Hashtbl.find_opt by_label label));
      on_retry (n + 1) e;
      let delay = min policy.max_delay (policy.base_delay *. (2. ** float_of_int n)) in
      if delay > 0. then Unix.sleepf delay;
      attempt (n + 1)
    | exception e ->
      if transient e then bump (fun g -> { g with exhausted = g.exhausted + 1 });
      raise e
  in
  attempt 0
