(* Bounded retry with full-jitter exponential backoff for transient I/O
   failures.

   Only exceptions that plausibly denote a transient environmental
   failure are retried: injected faults (the test stand-in for flaky
   media), [Sys_error] and [Unix_error] (EINTR/EAGAIN storms, a full
   disk that drains).  Logic errors — [Invalid_argument], decode errors,
   integrity violations — propagate immediately: retrying them would
   only repeat the bug.

   Backoff is full jitter: each delay is drawn uniformly from
   [0, min (max_delay, base_delay * 2^n)], so a herd of retriers does
   not re-collide on the same schedule, and the cap bounds the sleep
   whatever the retry count.  [deadline] bounds the whole run: once the
   elapsed time plus the next delay would cross it, the retry budget is
   treated as exhausted even if attempts remain.

   Every retried operation must be idempotent under re-execution.
   Callers make non-idempotent I/O (journal appends) idempotent by
   truncating back to a savepoint from [on_retry] before the next
   attempt.  [on_exhausted] fires once when the budget runs out — the
   store's circuit breaker counts these per shard and demotes a shard
   whose failures keep exhausting the budget.

   Stats are atomics and the label table is mutex-guarded: sharded
   stores run retries from pool domains. *)

type policy = {
  retries : int; (* extra attempts after the first failure *)
  base_delay : float; (* seconds; doubles per retry (before jitter) *)
  max_delay : float; (* backoff cap *)
  jitter : bool; (* full jitter: draw uniformly from [0, capped delay] *)
  deadline : float; (* seconds for the whole run; [infinity] = unbounded *)
}

let default_policy =
  { retries = 3; base_delay = 0.001; max_delay = 0.05; jitter = true; deadline = 1.0 }

(* The I/O classes a store threads retry policies through.  One default
   policy covers them all; per-class overrides tune hot or risky paths
   (see [Store.Config.retry_overrides]). *)
type io_class =
  | Stabilise
  | Image_load
  | Image_save
  | Journal_append
  | Journal_replay
  | Marker
  | Scrub
  | Compaction

let class_name = function
  | Stabilise -> "stabilise"
  | Image_load -> "image-load"
  | Image_save -> "image-save"
  | Journal_append -> "journal-append"
  | Journal_replay -> "journal-replay"
  | Marker -> "marker"
  | Scrub -> "scrub"
  | Compaction -> "compaction"

let all_classes =
  [ Stabilise; Image_load; Image_save; Journal_append; Journal_replay; Marker; Scrub; Compaction ]

type stats = {
  attempts : int;
  retries : int;
  absorbed : int; (* operations that failed then eventually succeeded *)
  exhausted : int; (* operations that failed even after all retries *)
}

let attempts_c = Atomic.make 0
let retries_c = Atomic.make 0
let absorbed_c = Atomic.make 0
let exhausted_c = Atomic.make 0

(* Per-label retry counters, for `shell health`.  Guarded: pool domains
   retry concurrently. *)
let labels_m = Mutex.create ()
let by_label : (string, int) Hashtbl.t = Hashtbl.create 8

let stats () =
  {
    attempts = Atomic.get attempts_c;
    retries = Atomic.get retries_c;
    absorbed = Atomic.get absorbed_c;
    exhausted = Atomic.get exhausted_c;
  }

let reset_stats () =
  Atomic.set attempts_c 0;
  Atomic.set retries_c 0;
  Atomic.set absorbed_c 0;
  Atomic.set exhausted_c 0;
  Mutex.lock labels_m;
  Hashtbl.reset by_label;
  Mutex.unlock labels_m

let counters () =
  Mutex.lock labels_m;
  let l = Hashtbl.fold (fun label n acc -> (label, n) :: acc) by_label [] in
  Mutex.unlock labels_m;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let bump_label label =
  Mutex.lock labels_m;
  Hashtbl.replace by_label label (1 + Option.value ~default:0 (Hashtbl.find_opt by_label label));
  Mutex.unlock labels_m

let transient = function
  | Faults.Fault_injected _ | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let delay_for policy n =
  let cap = Float.min policy.max_delay (policy.base_delay *. (2. ** float_of_int n)) in
  if cap <= 0. then 0. else if policy.jitter then Random.float cap else cap

let run ?(policy = default_policy) ?(on_retry = fun _ _ -> ()) ?(on_exhausted = fun _ -> ())
    ?obs ~label f =
  let started = Unix.gettimeofday () in
  let give_up e =
    if transient e then begin
      Atomic.incr exhausted_c;
      (try on_exhausted e with _ -> ())
    end;
    raise e
  in
  let rec attempt n =
    Atomic.incr attempts_c;
    match f () with
    | v ->
      if n > 0 then Atomic.incr absorbed_c;
      v
    | exception e when transient e && n < policy.retries ->
      let delay = delay_for policy n in
      (* The deadline bounds the whole run: if sleeping would cross it,
         the budget is exhausted now, not one nap later. *)
      if Unix.gettimeofday () -. started +. delay > policy.deadline then give_up e
      else begin
        Atomic.incr retries_c;
        (match obs with Some o -> Obs.incr o Obs.Retry | None -> ());
        bump_label label;
        (* A broken retry observer must not turn a retryable failure
           into a fatal one. *)
        (try on_retry (n + 1) e with _ -> ());
        if delay > 0. then Unix.sleepf delay;
        attempt (n + 1)
      end
    | exception e -> give_up e
  in
  attempt 0
