(* The unified typed failure for salvage reads: one variant shared by
   Store.try_get / try_field and the registry's try_get_link, so the
   layers above degrade broken links with a single match. *)

type t =
  | Quarantined of {
      oid : Oid.t;
      reason : string;
    }
  | Dangling of Oid.t
  | Collected of int
  | Bad_index of {
      container : string;
      index : int;
    }

(* Raised (not returned): a write routed to a shard that is degraded or
   offline.  An exception rather than a [t] constructor because writes
   have no [try_]-style result channel — the typed raise is the
   contract, and callers match on it to keep serving the other
   shards. *)
exception Shard_degraded of {
  shard : int;
  state : string; (* "degraded" | "offline" *)
  reason : string;
}

let () =
  Printexc.register_printer (function
    | Shard_degraded { shard; state; reason } ->
      Some (Printf.sprintf "Failure.Shard_degraded(shard %d %s: %s)" shard state reason)
    | _ -> None)

let pp ppf = function
  | Quarantined { oid; reason } ->
    Format.fprintf ppf "quarantined %a: %s" Oid.pp oid reason
  | Dangling oid -> Format.fprintf ppf "dangling reference %a" Oid.pp oid
  | Collected uid ->
    Format.fprintf ppf "hyper-program %d has been garbage collected" uid
  | Bad_index { container; index } ->
    Format.fprintf ppf "no index %d in %s" index container

let describe t = Format.asprintf "%a" pp t
