(* The unified typed failure for salvage reads: one variant shared by
   Store.try_get / try_field and the registry's try_get_link, so the
   layers above degrade broken links with a single match. *)

type t =
  | Quarantined of {
      oid : Oid.t;
      reason : string;
    }
  | Dangling of Oid.t
  | Collected of int
  | Bad_index of {
      container : string;
      index : int;
    }

(* Raised (not returned): a write routed to a shard that is degraded or
   offline.  An exception rather than a [t] constructor because writes
   have no [try_]-style result channel — the typed raise is the
   contract, and callers match on it to keep serving the other
   shards. *)
exception Shard_degraded of {
  shard : int;
  state : string; (* "degraded" | "offline" *)
  reason : string;
}

(* Raised by [Store.Session.commit]: first-committer-wins detection
   found that another commit (or a direct default-session write)
   touched part of this session's write set after its snapshot was
   pinned.  Carries the clashing oids and root/blob keys so the caller
   can open a fresh session and retry just the disputed work.  The
   losing session is aborted — none of its buffered ops reached the
   heap or the journal. *)
exception Commit_conflict of {
  session : int; (* losing session id *)
  oids : Oid.t list; (* clashing object ids, ascending *)
  keys : string list; (* clashing root/blob names, sorted *)
}

let () =
  Printexc.register_printer (function
    | Shard_degraded { shard; state; reason } ->
      Some (Printf.sprintf "Failure.Shard_degraded(shard %d %s: %s)" shard state reason)
    | Commit_conflict { session; oids; keys } ->
      let oid_part =
        if oids = [] then ""
        else
          Printf.sprintf " oids [%s]"
            (String.concat "; " (List.map (fun o -> Format.asprintf "%a" Oid.pp o) oids))
      in
      let key_part =
        if keys = [] then ""
        else Printf.sprintf " keys [%s]" (String.concat "; " keys)
      in
      Some (Printf.sprintf "Failure.Commit_conflict(session %d:%s%s)" session oid_part key_part)
    | _ -> None)

let pp ppf = function
  | Quarantined { oid; reason } ->
    Format.fprintf ppf "quarantined %a: %s" Oid.pp oid reason
  | Dangling oid -> Format.fprintf ppf "dangling reference %a" Oid.pp oid
  | Collected uid ->
    Format.fprintf ppf "hyper-program %d has been garbage collected" uid
  | Bad_index { container; index } ->
    Format.fprintf ppf "no index %d in %s" index container

let describe t = Format.asprintf "%a" pp t
