(* The write-ahead journal: a header naming the base image by checksum,
   then length-prefixed, CRC-protected mutation records.

   Record framing is [u32 length][u32 crc32(payload)][payload].  The
   framing is what makes recovery possible without trusting the tail of
   the file: a crash mid-append leaves a record whose length runs past
   end-of-file or whose checksum does not match, and replay simply stops
   there.  Nothing before the torn record is affected, so everything up to
   the last successful sync is recovered intact.

   A record payload holds either one op (tag 0-6) or a GROUP-COMMIT
   batch (tag 7): a whole multi-op stabilise delta in a single frame.
   Because the frame's CRC covers the entire batch, a crash mid-write
   tears the batch as a unit — recovery lands on the pre-batch state,
   never on a prefix of a transaction's mutations. *)

let magic = "HPJWAL01"
let header_size = String.length magic + 4

type op =
  | Set_root of string * Pvalue.t
  | Remove_root of string
  | Alloc of Oid.t * Heap.entry
  | Set_field of Oid.t * int * Pvalue.t
  | Set_elem of Oid.t * int * Pvalue.t
  | Set_blob of string * string
  | Remove_blob of string

type t = {
  oc : out_channel;
  mutable count : int;
  obs : Obs.t option; (* bumps Journal_append per record written *)
}

let path_for image_path = image_path ^ ".wal"

(* -- wire format --------------------------------------------------------- *)

let encode_op op =
  let open Codec in
  let w = writer () in
  (match op with
  | Set_root (name, v) ->
    put_u8 w 0;
    put_string w name;
    Pvalue.encode w v
  | Remove_root name ->
    put_u8 w 1;
    put_string w name
  | Alloc (oid, entry) ->
    put_u8 w 2;
    put_i64 w (Int64.of_int (Oid.to_int oid));
    Image.encode_entry w entry
  | Set_field (oid, idx, v) ->
    put_u8 w 3;
    put_i64 w (Int64.of_int (Oid.to_int oid));
    put_int w idx;
    Pvalue.encode w v
  | Set_elem (oid, idx, v) ->
    put_u8 w 4;
    put_i64 w (Int64.of_int (Oid.to_int oid));
    put_int w idx;
    Pvalue.encode w v
  | Set_blob (key, data) ->
    put_u8 w 5;
    put_string w key;
    put_string w data
  | Remove_blob key ->
    put_u8 w 6;
    put_string w key);
  contents w

let batch_tag = 7
let seq_batch_tag = 8

let decode_one r =
  let open Codec in
  let oid () = Oid.of_int (Int64.to_int (get_i64 r)) in
  match get_u8 r with
  | 0 ->
    let name = get_string r in
    Set_root (name, Pvalue.decode r)
  | 1 -> Remove_root (get_string r)
  | 2 ->
    let oid = oid () in
    Alloc (oid, Image.decode_entry r)
  | 3 ->
    let oid = oid () in
    let idx = get_int r in
    Set_field (oid, idx, Pvalue.decode r)
  | 4 ->
    let oid = oid () in
    let idx = get_int r in
    Set_elem (oid, idx, Pvalue.decode r)
  | 5 ->
    let key = get_string r in
    Set_blob (key, get_string r)
  | 6 -> Remove_blob (get_string r)
  | n -> decode_error "Journal: invalid record kind %d" n

let get_batch_ops r =
  let open Codec in
  get_list r (fun r ->
      let body = get_string r in
      let br = reader body in
      let op = decode_one br in
      if not (at_end br) then decode_error "Journal: trailing bytes in batched op";
      op)

(* A record payload is one op, a tag-7 batch of length-prefixed ops, or
   a tag-8 batch that additionally carries the store-level stabilise
   sequence number (sharded stores match batches against the commit
   marker by this number).  Returns the seq, if any, with the ops. *)
let decode_record payload =
  let open Codec in
  let r = reader payload in
  let tag = if String.length payload > 0 then Char.code payload.[0] else -1 in
  let seq, ops =
    if tag = batch_tag then begin
      ignore (get_u8 r);
      (None, get_batch_ops r)
    end
    else if tag = seq_batch_tag then begin
      ignore (get_u8 r);
      let seq = Int64.to_int (get_i64 r) in
      (Some seq, get_batch_ops r)
    end
    else (None, [ decode_one r ])
  in
  if not (at_end r) then decode_error "Journal: trailing bytes in record";
  (seq, ops)

let encode_batch ?seq ops =
  let open Codec in
  let w = writer () in
  (match seq with
  | None -> put_u8 w batch_tag
  | Some s ->
    put_u8 w seq_batch_tag;
    put_i64 w (Int64.of_int s));
  put_list w (fun w op -> put_string w (encode_op op)) ops;
  contents w

(* Record framing is the shared [Codec.put_frame] layout, the same one
   protecting each image entry: length, crc32, payload. *)
let frame payload =
  let w = Codec.writer () in
  Codec.put_frame w payload;
  Codec.contents w

(* -- writing ------------------------------------------------------------- *)

let create ?obs path ~base_crc =
  let oc = open_out_bin path in
  let header =
    let open Codec in
    let w = writer () in
    put_bytes w magic;
    put_i32 w base_crc;
    contents w
  in
  (try
     Faults.output_string oc header;
     Faults.fsync_channel oc
   with e ->
     close_out_noerr oc;
     raise e);
  { oc; count = 0; obs }

let append t ops =
  List.iter
    (fun op ->
      Faults.output_string t.oc (frame (encode_op op));
      t.count <- t.count + 1;
      match t.obs with
      | Some o -> Obs.incr o Obs.Journal_append
      | None -> ())
    ops

(* Group commit: the whole delta as ONE framed record.  The frame's CRC
   covers every op, so a crash mid-write tears the batch atomically —
   replay recovers the pre-batch state, never a prefix.  A single op
   keeps the plain framing (byte-compatible with pre-batch journals)
   unless [seq] is given: a seq-carrying batch is always a tag-8 frame,
   because sharded recovery must see the sequence number even for a
   one-op delta. *)
let append_batch ?seq t ops =
  match (ops, seq) with
  | [], _ -> ()
  | [ _ ], None -> append t ops
  | ops, seq ->
    Faults.output_string t.oc (frame (encode_batch ?seq ops));
    t.count <- t.count + List.length ops;
    (match t.obs with
    | Some o ->
      Obs.incr o Obs.Journal_append;
      Obs.incr o Obs.Group_commit
    | None -> ())

let sync t = Faults.fsync_channel t.oc

let depth t = t.count

let position t =
  flush t.oc;
  pos_out t.oc

let truncate_to t ~pos ~depth =
  flush t.oc;
  Unix.ftruncate (Unix.descr_of_out_channel t.oc) pos;
  seek_out t.oc pos;
  t.count <- depth

let close t = close_out_noerr t.oc

(* Simulate a process crash: close the descriptor without flushing, so
   buffered-but-unsynced bytes are lost exactly as they would be. *)
let crash t = try Unix.close (Unix.descr_of_out_channel t.oc) with _ -> ()

(* -- recovery ------------------------------------------------------------ *)

type batch = {
  b_seq : int option;  (* Some for tag-8 records; None otherwise *)
  b_ops : op list;
  b_end : int;  (* end byte offset of the record *)
}

type replay = {
  base_crc : int32;
  records : (op * int) list;
  batches : batch list;
  torn : bool;
  valid_bytes : int;
}

let read path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length data in
    if len < header_size || not (String.equal (String.sub data 0 (String.length magic)) magic)
    then None
    else begin
      let base_crc =
        Codec.get_i32 (Codec.reader (String.sub data (String.length magic) 4))
      in
      let records = ref [] in
      let batches = ref [] in
      let pos = ref header_size in
      let torn = ref false in
      let valid = ref header_size in
      (try
         while not !torn && !pos + 8 <= len do
           let r = Codec.reader (String.sub data !pos 8) in
           let payload_len = Codec.get_int r in
           let crc = Codec.get_i32 r in
           if payload_len < 0 || !pos + 8 + payload_len > len then torn := true
           else begin
             let payload = String.sub data (!pos + 8) payload_len in
             if not (Int32.equal (Codec.crc32 payload) crc) then torn := true
             else begin
               let seq, ops = decode_record payload in
               pos := !pos + 8 + payload_len;
               valid := !pos;
               (* every op of a batch shares the batch's end offset: a
                  truncation point is always a whole-record boundary *)
               List.iter (fun op -> records := (op, !pos) :: !records) ops;
               batches := { b_seq = seq; b_ops = ops; b_end = !pos } :: !batches
             end
           end
         done;
         if !pos < len && not !torn then torn := true
       with Codec.Decode_error _ -> torn := true);
      Some
        {
          base_crc;
          records = List.rev !records;
          batches = List.rev !batches;
          torn = !torn;
          valid_bytes = !valid;
        }
    end
  end

(* Seek rather than O_APPEND: [pos_out] on an append-mode channel reads 0
   until the first write, which would poison both the reported journal
   size and — worse — the [position] savepoints the sharded commit
   protocol truncates back to on a failed append. *)
let open_for_append ?obs path ~valid_bytes ~depth =
  Unix.truncate path valid_bytes;
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc valid_bytes;
  { oc; count = depth; obs }

(* Inserted entries are copied: a journal op may alias a live heap object
   (the store records allocations by reference), and replay must not give
   the rebuilt heap a view onto the old one's mutable state. *)
let copy_entry = function
  | Heap.Record r -> Heap.Record { r with Heap.fields = Array.copy r.Heap.fields }
  | Heap.Array a -> Heap.Array { a with Heap.elems = Array.copy a.Heap.elems }
  | Heap.Str s -> Heap.Str s
  | Heap.Weak c -> Heap.Weak { Heap.target = c.Heap.target }

let apply op heap roots blobs =
  match op with
  | Set_root (name, v) -> Roots.set roots name v
  | Remove_root name -> Roots.remove roots name
  | Alloc (oid, entry) ->
    (* replace, don't raise, on a live oid: a failed append followed by a
       retry can journal the same allocation at two sequence numbers, and
       replay of both must converge rather than abort recovery *)
    if Heap.is_live heap oid then Heap.remove heap oid;
    Heap.insert heap oid (copy_entry entry);
    if Oid.to_int oid >= Heap.next_oid heap then Heap.set_next_oid heap (Oid.to_int oid + 1)
  | Set_field (oid, idx, v) -> Heap.set_field heap oid idx v
  | Set_elem (oid, idx, v) -> Heap.set_elem heap oid idx v
  | Set_blob (key, data) -> Hashtbl.replace blobs key data
  | Remove_blob key -> Hashtbl.remove blobs key
