(** Sharded-store metadata: shard assignment hashing, shard file naming,
    the manifest file that replaces the flat image at the store path, and
    the store-level commit marker for cross-shard atomic stabilise.

    On-disk layout of an [N]-shard store at [path]:
    {v
      path             manifest (magic "HPJMANIF"): N, marker epoch,
                       per-shard image epochs
      path.s<k>.<e>    shard k's image at epoch e (ordinary v2 image)
      path.s<k>.<e>.wal   shard k's journal (journalled mode)
      path.marker.<m>  commit marker m (journalled mode)
    v}

    Single-shard stores keep the legacy flat layout ([path] is the image
    itself); [Store.open_file] sniffs the magic to pick the loader. *)

type t = {
  nshards : int;
  marker_epoch : int;  (** current marker file index; [-1] in snapshot mode *)
  epochs : int array;  (** current image epoch of each shard *)
}

val magic : string

(** {1 Shard assignment} *)

val shard_of_oid : count:int -> Oid.t -> int
(** Multiplicative-hash shard assignment; total over oids, stable across
    sessions (it is persisted implicitly by which image holds an oid). *)

val shard_of_key : count:int -> string -> int
(** Shard assignment for root and blob names. *)

(** {1 File naming} *)

val shard_image : string -> int -> int -> string
val shard_wal : string -> int -> int -> string
val marker_path : string -> int -> string

(** {1 Manifest I/O} *)

val save : ?durable:bool -> string -> t -> unit
(** Atomically replace the manifest (tmp + fsync + rename + dir fsync) —
    the commit point of shard-image compaction. *)

val load : string -> t
(** @raise Codec.Decode_error if unreadable or not a manifest. *)

val is_manifest : string -> bool
(** Does the file start with the manifest magic (vs a legacy image)? *)

val cleanup_stale : string -> t -> unit
(** Best-effort deletion of shard/marker files from superseded epochs.
    Errors are ignored: stale files are unreferenced and harmless. *)

(** {1 Commit marker}

    An append-only file of checksummed records, each carrying one
    store-level stabilise sequence number.  A sequence number is
    committed iff a marker record carrying it is durable; the marker
    record is only written after every participating shard journal has
    been fsynced, which is what makes a multi-shard stabilise
    all-or-nothing under crashes. *)

module Marker : sig
  type t

  val create : string -> t
  (** Truncate and write the marker header, fsynced. *)

  val append : t -> int -> unit
  (** Append a committed-sequence record.  Not durable until {!sync}. *)

  val sync : t -> unit

  val position : t -> int
  (** Current end offset: a savepoint for {!truncate_to}. *)

  val truncate_to : t -> pos:int -> unit
  (** Discard records after a savepoint (failed-stabilise rollback). *)

  val close : t -> unit

  val crash : t -> unit
  (** Close without flushing, losing buffered bytes (test support). *)

  type replay = {
    committed : int;  (** last good sequence number; [0] if none *)
    valid_bytes : int;  (** end offset of the last good record *)
  }

  val read : string -> replay option
  (** Lenient scan, stopping at the first torn record.  [None] if the
      file is missing or its header is unreadable. *)

  val open_for_append : string -> valid_bytes:int -> t
  (** Reopen, physically truncating any torn tail first. *)
end
