(* The online scrubber: incremental, budgeted passes over the heap that
   verify per-object checksums and reference health while the store keeps
   serving.

   Checksums are trust-on-first-scan: the store does not pay a hash on
   every mutation (mutating an object just invalidates its recorded CRC);
   instead the scrubber *primes* the CRC of any object it has not seen
   since its last mutation, and *verifies* objects whose recorded CRC is
   still current.  A verified mismatch means the object changed without
   the store noticing — memory corruption — and the object is
   quarantined.  Reference scanning quarantines the *target* of any
   dangling strong reference, so later reads of the hole get a typed
   [Quarantined] error instead of a crash.

   Each [step] scans at most [budget] objects, resuming where the last
   step stopped; a pass ends when the queue drains, and the next step
   starts a fresh pass over a fresh snapshot of the oids. *)

type state = {
  mutable queue : Oid.t list; (* oids left in the current pass *)
  mutable passes : int; (* completed full passes *)
  (* lifetime totals *)
  mutable scanned : int;
  mutable verified : int;
  mutable primed : int;
  mutable quarantined : int;
  mutable ref_errors : int;
}

type report = {
  scanned : int;
  verified : int;
  primed : int;
  newly_quarantined : (Oid.t * string) list;
  pass_complete : bool;
}

let create () =
  { queue = []; passes = 0; scanned = 0; verified = 0; primed = 0; quarantined = 0; ref_errors = 0 }

let passes state = state.passes
let pending state = List.length state.queue

let pp_progress ppf state =
  Format.fprintf ppf "pass %d (%d queued); scanned %d, verified %d, primed %d, quarantined %d, ref errors %d"
    state.passes (List.length state.queue) state.scanned state.verified state.primed
    state.quarantined state.ref_errors

let step state ~heap ~crcs ~quarantine ?reseed ?(foreign = fun _ -> false) ~budget () =
  if budget <= 0 then invalid_arg "Scrub.step: budget must be positive";
  if state.queue = [] then
    state.queue <-
      (match reseed with
      | Some f -> f ()
      | None -> List.sort Oid.compare (Heap.oids heap));
  let newly = ref [] in
  let quarantine_oid oid reason =
    Quarantine.add quarantine oid reason;
    Oid.Table.remove crcs oid;
    state.quarantined <- state.quarantined + 1;
    newly := (oid, reason) :: !newly
  in
  let scanned = ref 0 in
  let verified = ref 0 in
  let primed = ref 0 in
  while !scanned < budget && state.queue <> [] do
    let oid, rest =
      match state.queue with
      | oid :: rest -> (oid, rest)
      | [] -> assert false
    in
    state.queue <- rest;
    incr scanned;
    if not (Quarantine.mem quarantine oid) then begin
      match Heap.find heap oid with
      | None -> () (* swept since the pass started *)
      | Some entry -> begin
        let crc = Image.entry_crc entry in
        (match Oid.Table.find_opt crcs oid with
        | None ->
          Oid.Table.replace crcs oid crc;
          incr primed
        | Some recorded when Int32.equal recorded crc -> incr verified
        | Some recorded ->
          quarantine_oid oid
            (Printf.sprintf "checksum mismatch (in-memory): recorded %ld, computed %ld" recorded
               crc));
        (* Reference health: quarantine the target of any dangling
           reference so reads of the hole degrade instead of crashing.
           A dangling weak target is equally a violation — GC clears
           weak cells in the same pass that sweeps their targets. *)
        if not (Quarantine.mem quarantine oid) then begin
          let check_target target =
            if not (Heap.is_live heap target) then begin
              if foreign target then begin
                (* the target lives in another shard: touching that
                   shard's quarantine from this domain would race, so
                   just report it — the store routes the quarantine to
                   the owning shard after the parallel step *)
                state.ref_errors <- state.ref_errors + 1;
                newly :=
                  (target, Printf.sprintf "dangling target of %s" (Oid.to_string oid))
                  :: !newly
              end
              else if not (Quarantine.mem quarantine target) then begin
                state.ref_errors <- state.ref_errors + 1;
                quarantine_oid target
                  (Printf.sprintf "dangling target of %s" (Oid.to_string oid))
              end
            end
          in
          List.iter check_target (Heap.strong_refs entry);
          match entry with
          | Heap.Weak { Heap.target = Pvalue.Ref target } -> check_target target
          | _ -> ()
        end
      end
    end
  done;
  state.scanned <- state.scanned + !scanned;
  state.verified <- state.verified + !verified;
  state.primed <- state.primed + !primed;
  let pass_complete = state.queue = [] in
  if pass_complete then state.passes <- state.passes + 1;
  {
    scanned = !scanned;
    verified = !verified;
    primed = !primed;
    newly_quarantined = List.rev !newly;
    pass_complete;
  }
