(** Fault injection for durability testing.

    All file I/O performed by {!Image} and {!Journal} goes through the
    wrappers below.  With no fault armed they are plain pass-throughs
    costing one reference read, so production pays nothing.  Tests arm a
    fault to simulate a crash mid-write: the wrapper performs the partial
    effect (some bytes land on disk, the rename never happens, ...) and
    raises {!Fault_injected}, after which the injector disarms itself so
    recovery I/O runs clean.

    Domain-safe: injector state is guarded by a mutex so exactly one
    domain consumes an armed fault even when stabilise I/O fans out over
    the pool; the nothing-armed fast path is a single atomic load. *)

exception Fault_injected of string

type fault =
  | Fail_after_bytes of int
      (** Write through normally until [n] bytes have been written while
          armed, then stop mid-write and raise. *)
  | Short_write of int
      (** The next write persists only its first [n] bytes, then raises. *)
  | Rename_fails  (** The next rename raises, leaving the source in place. *)
  | Fsync_fails  (** The next fsync raises (data may still be buffered). *)
  | Bit_flip of int
      (** Silently corrupt one bit at byte offset [n] of the armed write
          stream; the write "succeeds".  Models media corruption, which
          checksums must detect. *)
  | Kill_after_bytes of int
      (** Write through normally until [n] bytes have been written while
          armed, flush the torn prefix to the OS, then SIGKILL the whole
          process.  This is the macro harness's crash injector: unlike
          {!Fail_after_bytes} nothing gets to handle the failure — the
          process dies exactly as a power cut would leave it, and only a
          fresh process can observe what recovery makes of the debris.
          [bin/hpjava] arms it from the [HPJAVA_KILL_AT_BYTE] environment
          variable. *)
  | Intr_storm of int
      (** The next [n] wrapped I/O calls raise [Unix_error (EINTR, ...)]
          without performing the operation, then the injector disarms.
          Not one-shot: a storm models a burst of interrupted syscalls
          that a retry policy must ride out (or a circuit breaker must
          trip on). *)

val arm : ?shard:int -> fault -> unit
(** Arm a fault.  Faults are one-shot (except {!Intr_storm}): firing
    disarms.  [?shard] targets the fault at one fault domain: it fires
    only on I/O performed inside the matching {!with_shard_scope}, and
    its byte budget counts only that shard's writes — I/O from other
    shards passes through untouched. *)

val disarm : unit -> unit
val armed : unit -> fault option

val with_shard_scope : int -> (unit -> 'a) -> 'a
(** Tag all wrapped I/O performed by [f] (on the calling domain) as
    belonging to shard [k].  The sharded store wraps each shard's image,
    journal and marker I/O in its scope — from pool domains and from the
    calling domain alike — so a [?shard]-targeted fault hits exactly one
    fault domain.  Scopes are domain-local and nest (innermost wins). *)

val shard_scope : unit -> int option
(** The calling domain's current shard scope, if any. *)

val fired : unit -> int
(** Total faults fired since program start. *)

val with_fault : fault -> (unit -> 'a) -> ('a, exn) result
(** Arm, run, disarm (even on exception).  The raised exception — usually
    {!Fault_injected} — is returned as [Error]. *)

val corrupt_entry : Heap.t -> Oid.t -> unit
(** Flip one bit of an object's in-memory state behind the store API (a
    stray pointer / bad DIMM stand-in).  Counts as a fired fault; the
    scrubber's checksum pass is what must catch it.
    @raise Heap.Heap_error if the oid is not live. *)

(** {1 Wrapped I/O} *)

val output_string : out_channel -> string -> unit
val rename : string -> string -> unit

val fsync_channel : out_channel -> unit
(** Flush the channel and fsync its descriptor. *)

val fsync_dir : string -> unit
(** Fsync a directory, making renames within it durable. *)
