(** The quarantine set: corrupt or undecodable objects, isolated rather
    than fatal.

    Reads of a quarantined oid raise {!Quarantined} (a typed error the
    upper layers catch to render broken-link placeholders), while every
    other object stays readable.  A quarantined oid may still have a heap
    entry (in-memory corruption keeps the suspect entry for forensics) or
    none at all (image-load salvage drops the undecodable payload). *)

exception Quarantined of Oid.t * string

type t

(** Salvage reads ({!Store.try_get} and friends) report their failures
    through the shared {!Failure.t} variant. *)

val create : unit -> t
val add : t -> Oid.t -> string -> unit
val remove : t -> Oid.t -> unit
val find : t -> Oid.t -> string option
val mem : t -> Oid.t -> bool
val size : t -> int
val is_empty : t -> bool

val check : t -> Oid.t -> unit
(** @raise Quarantined if the oid is quarantined. *)

val to_list : t -> (Oid.t * string) list
(** Sorted by oid, for deterministic display and serialisation. *)

val replace_all : t -> from:t -> unit
(** Replace the whole set with another's contents (transaction rollback). *)
