(* A tiny persistent worker pool over OCaml 5 stdlib domains, shared by
   every parallel maintenance pass in the store (sharded stabilise, scrub,
   GC mark).  Spawning a domain costs ~100us, far more than a typical
   per-shard work item, so workers are spawned once, parked on a condition
   variable, and reused for every [run].

   The pool sizes itself to [Domain.recommended_domain_count () - 1]
   workers (the caller participates, so total parallelism matches the
   machine); [PSTORE_DOMAINS] or {!set_limit} overrides it.  On a
   single-core host the limit is 1 and [run] degrades to a plain
   sequential loop with no locking at all — parallel correctness is then
   exercised by tests that force a higher limit.

   [run] is not reentrant: a task that calls [run] again gets the
   sequential fallback (the pool is busy), which keeps nested use safe
   rather than deadlocking. *)

type state = {
  m : Mutex.t;
  work : Condition.t; (* workers park here between jobs *)
  done_ : Condition.t; (* the submitting caller parks here *)
  mutable job : (int -> unit) option;
  mutable njobs : int;
  mutable next : int; (* next task index to hand out *)
  mutable unfinished : int; (* handed out or waiting, not yet finished *)
  mutable first_exn : exn option;
  mutable busy : bool; (* a run is in flight (nested runs go sequential) *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let st =
  {
    m = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    job = None;
    njobs = 0;
    next = 0;
    unfinished = 0;
    first_exn = None;
    busy = false;
    stop = false;
    workers = [];
  }

let default_limit () =
  match Option.bind (Sys.getenv_opt "PSTORE_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Domain.recommended_domain_count ()

let limit = ref (-1) (* resolved on first use *)

let get_limit () =
  if !limit < 0 then limit := default_limit ();
  !limit

let set_limit n =
  if n < 1 then invalid_arg "Dpool.set_limit: limit must be >= 1";
  limit := n

let parallelism () = get_limit ()

(* Record the first task exception; the submitting caller re-raises it.
   Later tasks still run — maintenance passes touch disjoint shards, so
   finishing them cannot make the failure worse, and one-shot fault
   injection disarms after firing anyway. *)
let run_task f i =
  match f i with
  | () -> ()
  | exception e ->
    Mutex.lock st.m;
    if st.first_exn = None then st.first_exn <- Some e;
    Mutex.unlock st.m

let finish_task () =
  st.unfinished <- st.unfinished - 1;
  if st.unfinished = 0 then begin
    st.job <- None;
    Condition.broadcast st.done_
  end

let worker () =
  Mutex.lock st.m;
  let rec loop () =
    if st.stop then Mutex.unlock st.m
    else begin
      match st.job with
      | Some f when st.next < st.njobs ->
        let i = st.next in
        st.next <- st.next + 1;
        Mutex.unlock st.m;
        run_task f i;
        Mutex.lock st.m;
        finish_task ();
        loop ()
      | _ ->
        Condition.wait st.work st.m;
        loop ()
    end
  in
  loop ()

(* Called with [st.m] held. *)
let ensure_workers wanted =
  let target = min wanted (get_limit () - 1) in
  let have = List.length st.workers in
  for _ = have + 1 to target do
    st.workers <- Domain.spawn worker :: st.workers
  done

let shutdown () =
  Mutex.lock st.m;
  st.stop <- true;
  Condition.broadcast st.work;
  let ws = st.workers in
  st.workers <- [];
  Mutex.unlock st.m;
  List.iter Domain.join ws

(* Idle workers would otherwise keep the process alive at exit. *)
let () = at_exit shutdown

let run_seq n f =
  for i = 0 to n - 1 do
    f i
  done

let run n f =
  if n <= 0 then ()
  else if n = 1 then f 0
  else begin
    Mutex.lock st.m;
    if st.busy || st.stop || get_limit () <= 1 then begin
      Mutex.unlock st.m;
      run_seq n f
    end
    else begin
      ensure_workers (n - 1);
      st.busy <- true;
      st.job <- Some f;
      st.njobs <- n;
      st.next <- 0;
      st.unfinished <- n;
      st.first_exn <- None;
      Condition.broadcast st.work;
      (* The caller participates until the work runs out, then waits for
         stragglers. *)
      let rec help () =
        match st.job with
        | Some g when st.next < st.njobs ->
          let i = st.next in
          st.next <- st.next + 1;
          Mutex.unlock st.m;
          run_task g i;
          Mutex.lock st.m;
          finish_task ();
          help ()
        | _ ->
          if st.unfinished > 0 then begin
            Condition.wait st.done_ st.m;
            help ()
          end
      in
      help ();
      let exn = st.first_exn in
      st.first_exn <- None;
      st.busy <- false;
      Mutex.unlock st.m;
      match exn with
      | Some e -> raise e
      | None -> ()
    end
  end
