(* Stabilisation: the whole store (heap, roots, blobs, quarantine) is
   serialised into a single image and written atomically (temp file +
   rename).  Oids are preserved verbatim so hyper-links survive a
   close/reopen.

   Format v2 checksums every object individually: each heap entry is a
   [length][crc32][payload] frame (the same framing the write-ahead
   journal uses, via {!Codec.put_frame}), and the tail section (roots,
   blobs, quarantine) is one more such frame.  A whole-image CRC trailer
   still identifies the image for journal pairing.  The per-entry frames
   are what make salvage possible: when the whole-image checksum fails,
   [decode] walks the entry frames, quarantines exactly the objects whose
   frames are corrupt, and loads everything else — one flipped bit costs
   one object, not the store.

   Blobs are named byte strings used by higher layers for non-object
   state; the MiniJava runtime stores its compiled class files there,
   which is what makes classes persistent. *)

exception Image_error of string

let image_error fmt = Format.kasprintf (fun s -> raise (Image_error s)) fmt

let magic = "HPJSTORE"
let version = 2

type contents = {
  heap : Heap.t;
  roots : Roots.t;
  blobs : (string, string) Hashtbl.t;
  quarantine : Quarantine.t;
}

(* -- per-object wire format ----------------------------------------------- *)

let encode_entry_into w entry =
  let open Codec in
  match entry with
  | Heap.Record r ->
    put_u8 w 0;
    put_string w r.Heap.class_name;
    put_array w Pvalue.encode r.Heap.fields
  | Heap.Array a ->
    put_u8 w 1;
    put_string w a.Heap.elem_type;
    put_array w Pvalue.encode a.Heap.elems
  | Heap.Str s ->
    put_u8 w 2;
    put_string w s
  | Heap.Weak cell ->
    put_u8 w 3;
    Pvalue.encode w cell.Heap.target

let encode_entry_payload entry =
  let w = Codec.writer () in
  encode_entry_into w entry;
  Codec.contents w

(* The per-object checksum: what the image frames store and the online
   scrubber recomputes.  The encode buffer is reused — one per domain,
   since sharded scrubbers recompute CRCs from pool workers — so a
   budgeted scrub step allocates per-object payload bytes, not a fresh
   4 KiB buffer per object visited. *)
let crc_scratch = Domain.DLS.new_key (fun () -> Codec.writer ())

let entry_crc entry =
  let w = Domain.DLS.get crc_scratch in
  Codec.reset w;
  encode_entry_into w entry;
  Codec.crc32 (Codec.contents w)

let decode_entry_payload payload =
  let open Codec in
  let r = reader payload in
  let entry =
    match get_u8 r with
    | 0 ->
      let class_name = get_string r in
      let fields = get_array r Pvalue.decode in
      Heap.Record { Heap.class_name; fields }
    | 1 ->
      let elem_type = get_string r in
      let elems = get_array r Pvalue.decode in
      Heap.Array { Heap.elem_type; elems }
    | 2 -> Heap.Str (get_string r)
    | 3 -> Heap.Weak { Heap.target = Pvalue.decode r }
    | n -> Codec.decode_error "Image: invalid entry kind %d" n
  in
  if not (at_end r) then Codec.decode_error "Image: trailing bytes in entry";
  entry

let encode_entry w entry = Codec.put_frame w (encode_entry_payload entry)
let decode_entry r = decode_entry_payload (Codec.get_frame r)

(* -- whole-image format ---------------------------------------------------- *)

let encode { heap; roots; blobs; quarantine } =
  let open Codec in
  let w = writer () in
  put_bytes w magic;
  put_u8 w version;
  put_i64 w (Int64.of_int (Heap.next_oid heap));
  (* Heap entries, sorted by oid for deterministic images. *)
  let entries =
    Heap.fold (fun oid entry acc -> (oid, entry) :: acc) heap []
    |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)
  in
  put_int w (List.length entries);
  List.iter
    (fun (oid, entry) ->
      put_i64 w (Int64.of_int (Oid.to_int oid));
      encode_entry w entry)
    entries;
  (* The tail (roots, blobs, quarantine) rides in its own frame so a
     salvage load can still trust it when entry payloads are corrupt. *)
  let tail = writer () in
  let root_bindings =
    Roots.fold (fun name v acc -> (name, v) :: acc) roots []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  put_int tail (List.length root_bindings);
  List.iter
    (fun (name, v) ->
      put_string tail name;
      Pvalue.encode tail v)
    root_bindings;
  let blob_bindings =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) blobs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  put_int tail (List.length blob_bindings);
  List.iter
    (fun (k, v) ->
      put_string tail k;
      put_string tail v)
    blob_bindings;
  let quarantined = Quarantine.to_list quarantine in
  put_int tail (List.length quarantined);
  List.iter
    (fun (oid, reason) ->
      put_i64 tail (Int64.of_int (Oid.to_int oid));
      put_string tail reason)
    quarantined;
  put_frame w (contents tail);
  let body = contents w in
  let trailer = writer () in
  put_i32 trailer (crc32 body);
  body ^ Codec.contents trailer

let decode_with_salvage data =
  let open Codec in
  if String.length data < String.length magic + 1 + 4 then image_error "truncated image";
  let body = String.sub data 0 (String.length data - 4) in
  let crc_reader = reader (String.sub data (String.length data - 4) 4) in
  let stored_crc = get_i32 crc_reader in
  let actual_crc = crc32 body in
  let checksum_ok = Int32.equal stored_crc actual_crc in
  let fail_checksum () =
    image_error "checksum mismatch: stored %ld, computed %ld" stored_crc actual_crc
  in
  (* On a whole-image mismatch we attempt salvage: per-entry frames
     localise the damage.  Salvage is accepted only if it actually finds
     corrupt entry frames and the tail frame still verifies; corruption
     anywhere else (header, oid fields, tail) means nothing can be
     trusted, and the original checksum error is raised. *)
  let quarantine = Quarantine.create () in
  let salvaged = ref 0 in
  try
    let r = reader body in
    let file_magic = get_bytes r (String.length magic) in
    if not (String.equal file_magic magic) then
      if checksum_ok then image_error "bad magic %S" file_magic else fail_checksum ();
    let file_version = get_u8 r in
    if file_version <> version then
      if checksum_ok then image_error "unsupported image version %d" file_version
      else fail_checksum ();
    let next = Int64.to_int (get_i64 r) in
    let heap = Heap.create () in
    let n_entries = get_int r in
    for _ = 1 to n_entries do
      let oid = Oid.of_int (Int64.to_int (get_i64 r)) in
      match checked_frame r with
      | Ok payload -> begin
        match decode_entry_payload payload with
        | entry -> Heap.insert heap oid entry
        | exception Codec.Decode_error msg ->
          Quarantine.add quarantine oid ("undecodable object: " ^ msg);
          incr salvaged
      end
      | Error msg ->
        Quarantine.add quarantine oid ("storage " ^ msg);
        incr salvaged
    done;
    Heap.set_next_oid heap next;
    let tail = reader (get_frame r) in
    let roots = Roots.create () in
    let n_roots = get_int tail in
    for _ = 1 to n_roots do
      let name = get_string tail in
      Roots.set roots name (Pvalue.decode tail)
    done;
    let blobs = Hashtbl.create 16 in
    let n_blobs = get_int tail in
    for _ = 1 to n_blobs do
      let k = get_string tail in
      let v = get_string tail in
      Hashtbl.replace blobs k v
    done;
    let n_quarantined = get_int tail in
    for _ = 1 to n_quarantined do
      let oid = Oid.of_int (Int64.to_int (get_i64 tail)) in
      let reason = get_string tail in
      if not (Quarantine.mem quarantine oid) then Quarantine.add quarantine oid reason
    done;
    if not (at_end r) then image_error "%d trailing bytes after image" (remaining r);
    if (not checksum_ok) && !salvaged = 0 then fail_checksum ();
    ({ heap; roots; blobs; quarantine }, !salvaged)
  with Codec.Decode_error _ when not checksum_ok -> fail_checksum ()

let decode data = fst (decode_with_salvage data)

(* The CRC that [encode] appended: identifies this image so a journal can
   name the exact snapshot it extends. *)
let crc_of_encoded data =
  if String.length data < 4 then image_error "truncated image";
  Codec.get_i32 (Codec.reader (String.sub data (String.length data - 4) 4))

(* Crash-atomic save: write a temp file, fsync it, rename it over the
   target, then fsync the directory so the rename itself is durable.
   Rename alone is not crash-atomic on ext4: the new name can be lost on
   power failure if the directory entry was never flushed. *)
let save ?(durable = true) ?obs path contents =
  let data = encode contents in
  let write () =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       Faults.output_string oc data;
       if durable then Faults.fsync_channel oc;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Faults.rename tmp path;
    if durable then Faults.fsync_dir (Filename.dirname path);
    crc_of_encoded data
  in
  match obs with
  | None -> write ()
  | Some o ->
    Obs.span o Obs.Image_save ~bytes:(String.length data)
      ~label:(Filename.basename path) write

(* A load that also reports how many entries the decoder had to salvage
   around: the sharded open uses the count to judge whether a shard's
   image was damaged enough to demote the shard (salvage-heavy open). *)
type load_report = {
  lr_contents : contents;
  lr_crc : int32;
  lr_salvaged : int;
}

let load_report ?obs path =
  let read () =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let data =
      try really_input_string ic len
      with e ->
        close_in_noerr ic;
        raise e
    in
    close_in ic;
    let contents, salvaged = decode_with_salvage data in
    { lr_contents = contents; lr_crc = crc_of_encoded data; lr_salvaged = salvaged }
  in
  match obs with
  | None -> read ()
  | Some o -> Obs.span o Obs.Image_load ~label:(Filename.basename path) read

let load_with_crc ?obs path =
  let r = load_report ?obs path in
  (r.lr_contents, r.lr_crc)

let load path = fst (load_with_crc path)

(* One shard's view of whole-store contents: entries, roots, blobs and
   quarantined oids selected by the shard predicates.  Heap entries are
   shared by reference — a slice is a transient encode/save input, never
   a second live store.  [next_oid] is the global counter: every shard
   image must be able to restore it alone. *)
let slice ~keep_oid ~keep_key { heap; roots; blobs; quarantine } =
  let h = Heap.create () in
  Heap.iter (fun oid e -> if keep_oid oid then Heap.insert h oid e) heap;
  Heap.set_next_oid h (Heap.next_oid heap);
  let r = Roots.create () in
  Roots.iter (fun name v -> if keep_key name then Roots.set r name v) roots;
  let b = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> if keep_key k then Hashtbl.replace b k v) blobs;
  let q = Quarantine.create () in
  List.iter
    (fun (oid, reason) -> if keep_oid oid then Quarantine.add q oid reason)
    (Quarantine.to_list quarantine);
  { heap = h; roots = r; blobs = b; quarantine = q }
