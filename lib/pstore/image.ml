(* Stabilisation: the whole store (heap, roots, blobs) is serialised into a
   single image, checksummed, and written atomically (temp file + rename).
   Oids are preserved verbatim so hyper-links survive a close/reopen.

   Blobs are named byte strings used by higher layers for non-object state;
   the MiniJava runtime stores its compiled class files there, which is what
   makes classes persistent. *)

exception Image_error of string

let image_error fmt = Format.kasprintf (fun s -> raise (Image_error s)) fmt

let magic = "HPJSTORE"
let version = 1

type contents = {
  heap : Heap.t;
  roots : Roots.t;
  blobs : (string, string) Hashtbl.t;
}

let encode_entry w entry =
  let open Codec in
  match entry with
  | Heap.Record r ->
    put_u8 w 0;
    put_string w r.Heap.class_name;
    put_array w Pvalue.encode r.Heap.fields
  | Heap.Array a ->
    put_u8 w 1;
    put_string w a.Heap.elem_type;
    put_array w Pvalue.encode a.Heap.elems
  | Heap.Str s ->
    put_u8 w 2;
    put_string w s
  | Heap.Weak cell ->
    put_u8 w 3;
    Pvalue.encode w cell.Heap.target

let decode_entry r =
  let open Codec in
  match get_u8 r with
  | 0 ->
    let class_name = get_string r in
    let fields = get_array r Pvalue.decode in
    Heap.Record { Heap.class_name; fields }
  | 1 ->
    let elem_type = get_string r in
    let elems = get_array r Pvalue.decode in
    Heap.Array { Heap.elem_type; elems }
  | 2 -> Heap.Str (get_string r)
  | 3 -> Heap.Weak { Heap.target = Pvalue.decode r }
  | n -> Codec.decode_error "Image: invalid entry kind %d" n

let encode { heap; roots; blobs } =
  let open Codec in
  let w = writer () in
  put_bytes w magic;
  put_u8 w version;
  put_i64 w (Int64.of_int (Heap.next_oid heap));
  (* Heap entries, sorted by oid for deterministic images. *)
  let entries =
    Heap.fold (fun oid entry acc -> (oid, entry) :: acc) heap []
    |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)
  in
  put_int w (List.length entries);
  List.iter
    (fun (oid, entry) ->
      put_i64 w (Int64.of_int (Oid.to_int oid));
      encode_entry w entry)
    entries;
  let root_bindings =
    Roots.fold (fun name v acc -> (name, v) :: acc) roots []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  put_int w (List.length root_bindings);
  List.iter
    (fun (name, v) ->
      put_string w name;
      Pvalue.encode w v)
    root_bindings;
  let blob_bindings =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) blobs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  put_int w (List.length blob_bindings);
  List.iter
    (fun (k, v) ->
      put_string w k;
      put_string w v)
    blob_bindings;
  let body = contents w in
  let tail = writer () in
  put_i32 tail (crc32 body);
  body ^ Codec.contents tail

let decode data =
  let open Codec in
  if String.length data < String.length magic + 1 + 4 then image_error "truncated image";
  let body = String.sub data 0 (String.length data - 4) in
  let crc_reader = reader (String.sub data (String.length data - 4) 4) in
  let stored_crc = get_i32 crc_reader in
  let actual_crc = crc32 body in
  if not (Int32.equal stored_crc actual_crc) then
    image_error "checksum mismatch: stored %ld, computed %ld" stored_crc actual_crc;
  let r = reader body in
  let file_magic = get_bytes r (String.length magic) in
  if not (String.equal file_magic magic) then image_error "bad magic %S" file_magic;
  let file_version = get_u8 r in
  if file_version <> version then image_error "unsupported image version %d" file_version;
  let next = Int64.to_int (get_i64 r) in
  let heap = Heap.create () in
  let n_entries = get_int r in
  for _ = 1 to n_entries do
    let oid = Oid.of_int (Int64.to_int (get_i64 r)) in
    Heap.insert heap oid (decode_entry r)
  done;
  Heap.set_next_oid heap next;
  let roots = Roots.create () in
  let n_roots = get_int r in
  for _ = 1 to n_roots do
    let name = get_string r in
    Roots.set roots name (Pvalue.decode r)
  done;
  let blobs = Hashtbl.create 16 in
  let n_blobs = get_int r in
  for _ = 1 to n_blobs do
    let k = get_string r in
    let v = get_string r in
    Hashtbl.replace blobs k v
  done;
  if not (at_end r) then image_error "%d trailing bytes after image" (remaining r);
  { heap; roots; blobs }

(* The CRC that [encode] appended: identifies this image so a journal can
   name the exact snapshot it extends. *)
let crc_of_encoded data =
  if String.length data < 4 then image_error "truncated image";
  Codec.get_i32 (Codec.reader (String.sub data (String.length data - 4) 4))

(* Crash-atomic save: write a temp file, fsync it, rename it over the
   target, then fsync the directory so the rename itself is durable.
   Rename alone is not crash-atomic on ext4: the new name can be lost on
   power failure if the directory entry was never flushed. *)
let save ?(durable = true) path contents =
  let data = encode contents in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Faults.output_string oc data;
     if durable then Faults.fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Faults.rename tmp path;
  if durable then Faults.fsync_dir (Filename.dirname path);
  crc_of_encoded data

let load_with_crc path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data =
    try really_input_string ic len
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  (decode data, crc_of_encoded data)

let load path = fst (load_with_crc path)
