(** The persistent store facade (the paper's PJama analog).

    A store is a heap of objects, a set of named roots, and a blob table,
    with stabilisation to a backing file.  Programs (hyper-programs, class
    files) live in the same store as the data they manipulate.

    {b The handle-first surface.}  Every read and mutation goes through a
    {!Session.t} handle.  {!open_session} pins a snapshot-isolated MVCC
    session: byte-stable reads as of open, privately buffered writes,
    published atomically by {!Session.commit} with first-committer-wins
    conflict detection ({!Failure.Commit_conflict}).  Code that owns a
    store alone can keep calling the single-owner operations below
    ([get], [set_field], [set_root], ...); each is a thin wrapper over
    the store's implicit {e default session}, which reads and writes the
    shared state directly, exactly as the store always behaved. *)

type t

type store = t
(** Alias so the {!Session} signature can refer to the store type. *)

(** {1 Durability}

    [Snapshot] (the default) rewrites the full image on every stabilise.
    [Journalled] buffers mutations as write-ahead journal ops: stabilise
    appends and fsyncs just the delta since the last stabilise, and the
    full image is rewritten only at compaction points. *)

type durability =
  | Snapshot
  | Journalled

(** {1 Configuration}

    All store tunables in one record, applied atomically with
    {!configure} or at construction time via [?config] on {!create} and
    {!open_file}.  This record is the only way to retune a live store —
    the per-knob setters it replaced are gone. *)

module Config : sig
  type t = {
    durability : durability;
    compaction_limit : int;
        (** journal records tolerated before stabilise compacts *)
    group_window : int;
        (** group commit: journalled stabilises per fsync.  [1] (the
            default) fsyncs every stabilise; [n > 1] coalesces each
            delta into one atomic batch record and fsyncs every n-th
            stabilise (and at compaction/close), trading bounded recent
            durability for throughput — a crash can lose up to [n - 1]
            whole batches, never part of one *)
    retry : Retry.policy option;
        (** transient-I/O retry, threaded through every I/O class
            (stabilise, image load/save, journal append, commit marker,
            compaction); [None] = fail fast *)
    retry_overrides : (Retry.io_class * Retry.policy) list;
        (** per-class policy overrides; a class not listed here uses
            [retry] *)
    breaker : int;
        (** circuit breaker: consecutive exhausted transient failures on
            one shard before it is demoted to degraded ([0] = never).
            Sharded stores only *)
    salvage_degrade : int;
        (** a sharded open that had to salvage at least this many
            entries from one shard's image opens that shard degraded
            ([0] = never) *)
    backing : string option;
        (** [Some p] points the store at a backing file; [None] leaves
            the current backing untouched (identity is not a tunable) *)
    trace_ring : int;  (** trace-ring capacity, in events *)
    tracing : bool;  (** latency histograms + trace ring on/off *)
    shards : int;
        (** shard count, fixed at store creation and persisted in the
            store manifest.  [1] (the default) keeps the legacy flat
            single-file layout; [n > 1] partitions objects by oid hash
            (roots and blobs by key hash) into [n] shards, each with its
            own image, journal, quarantine set and scrub cursor, so
            stabilise, scrub and GC mark run shard-wise on the domain
            pool.  {!configure} on an existing store must repeat the
            store's own count; {!open_file} always adopts the on-disk
            count. *)
  }

  val default : t
  (** Snapshot durability, default compaction limit, no retry (and no
      per-class overrides), breaker threshold 3, salvage-degrade
      threshold 8, backing untouched, {!Obs.default_ring_capacity} ring,
      tracing off. *)
end

val create : ?config:Config.t -> unit -> t
(** A fresh, empty, unbacked store (snapshot durability unless [config]
    says otherwise). *)

val open_file : ?config:Config.t -> string -> t
(** Recover a store from a stabilised image.  If a write-ahead journal
    paired with the image exists it is replayed on top (truncating at the
    first torn record) and the store reopens in journalled mode; a crash
    that left a complete-but-unrenamed snapshot is promoted.  An explicit
    [config] is applied after recovery, so its durability wins over the
    recovered mode.

    On a sharded store, shard faults are contained: an unreadable shard
    image takes only that shard {e offline} (see {!health}; its slice of
    the store stays empty until {!repair}), and a salvage-heavy shard
    load opens that shard {e degraded} — the other shards load and serve
    normally.
    @raise Image.Image_error on a corrupt single-shard image with
    nothing to recover. *)

val configure : t -> Config.t -> unit
(** Apply a whole configuration.  [backing = None] keeps the current
    backing file; switching durability behaves like the legacy
    [set_durability] (entering [Journalled] forces a full image at the
    next stabilise, entering [Snapshot] discards the journal). *)

val config : t -> Config.t
(** The store's current configuration ([backing] is the current backing
    file, so [configure s (config s)] is the identity). *)

val close : t -> unit
(** Release the journal file handle, if any, and seal the observability
    state: a final counter snapshot is recorded ({!Obs.flush}) and the
    trace ring is emptied.  The store stays usable in memory; the next
    journalled stabilise recreates the handle by compaction.  Idempotent,
    and safe on any durability mode. *)

val crash : t -> unit
(** Test support: simulate a process crash.  The journal descriptor is
    closed without flushing, so buffered-but-unsynced bytes are lost, and
    in-flight trace state is dropped without a final snapshot
    ({!Obs.drop}).  The in-memory store should be discarded and the image
    reopened.  Idempotent, safe on any durability mode, and safe after
    {!close}. *)

val heap : t -> Heap.t
val roots : t -> Roots.t

val obs : t -> Obs.t
(** The store's observability state: operation counters (always on),
    latency histograms and the bounded trace ring (on when tracing is
    enabled via {!configure} or [Obs.set_enabled]). *)

val props : t -> Props.t
(** A typed property bag for per-store transient state attached by
    higher layers (memo tables, cached fingerprints).  Never stabilised;
    a reopened store starts empty. *)

val invalidation_epoch : t -> int
(** Side-cache invalidation stamp.  Bumped by every event that can
    change what a read observes without going through a higher layer's
    own API: quarantine add/clear (including the scrubber's), a GC
    sweep, transaction rollback, and {!mark_dirty}.  Caches attached via
    {!props} stamp entries with this epoch and flush on mismatch. *)

val shards : t -> int
(** The store's shard count (>= 1). *)

val shard_of : t -> Oid.t -> int
(** The shard an oid hashes to (always [0] on a single-shard store). *)

(** {1 Fault domains and shard health}

    On a sharded store each shard is a fault domain with a three-state
    health machine: [Healthy], [Degraded reason] (the circuit breaker
    tripped on repeated exhausted transient I/O failures, or the open
    had to salvage heavily around its image), or [Offline reason] (its
    image was unreadable at open).  A shard that is not healthy is
    read-only: reads keep serving from memory (counted as degraded
    reads), writes routed to it raise {!Failure.Shard_degraded}, and
    stabilise simply works around it — every other shard keeps full
    service.  {!repair} is the way back to healthy. *)

type shard_health = {
  h_shard : int;
  h_state : Health.state;
  h_failures : int;  (** consecutive exhausted transient I/O failures *)
  h_trips : int;  (** demotions so far (breaker trips + open demotions) *)
  h_degraded_reads : int;  (** reads served while not healthy *)
  h_refused_writes : int;  (** writes refused with [Shard_degraded] *)
  h_repairs : int;  (** successful repairs *)
}

val health : t -> shard_health list
(** Per-shard health, in shard order. *)

val healthy : t -> bool
(** Every shard is healthy (always true on a single-shard store). *)

val shard_healthy : t -> int -> bool

val degrade_shard : t -> int -> string -> unit
(** Operator override: demote a healthy shard to degraded (no-op on an
    already-demoted shard).  @raise Invalid_argument on a bad index. *)

val offline_shard : t -> int -> string -> unit
(** Operator override: take a shard offline (no-op if already offline). *)

type repair_report = {
  r_shard : int;
  r_was : Health.state;  (** the state the shard was repaired out of *)
  r_restored : int;  (** heap entries recovered from its on-disk image *)
  r_replayed : int;  (** journal ops re-applied on top of them *)
  r_lost : int;
      (** oids still referenced by survivors that stayed unrecoverable;
          they are quarantined with a "lost with its shard" reason *)
  r_ms : float;  (** wall-clock repair time, milliseconds *)
}

val repair : t -> int -> repair_report option
(** Repair one shard; [None] if it is already healthy.  A degraded
    shard's state was never lost — repair promotes it and rewrites its
    image (a partial compaction) so buffered mutations and quarantine
    changes land durably.  An offline shard is first rebuilt from
    whatever survives on disk: its image (salvage-tolerant), then its
    journal gated by the commit marker exactly like normal recovery but
    op-by-op lenient.  Cross-shard references into the shard that remain
    dead afterwards are quarantined as lost, and the allocator is kept
    clear of their oids.  If the durable rewrite fails the shard is
    re-demoted and the failure re-raised.
    @raise Invalid_argument on a bad shard index. *)

val repair_all : t -> repair_report list
(** Repair every unhealthy shard, in shard order. *)

val backing : t -> string option
val durability : t -> durability
val group_window : t -> int

val set_group_window : t -> int -> unit
(** See {!Config.t}[.group_window].
    @raise Invalid_argument if the window is < 1. *)

val mark_dirty : t -> unit
(** Tell the store its heap was mutated behind its back (direct record
    surgery, e.g. schema evolution's instance reconstruction): the next
    stabilise writes a full image rather than trusting the journal.
    @raise Invalid_argument while snapshot sessions are open — untracked
    surgery would tear their pinned views. *)

(** {1 Named roots} *)

val set_root : t -> string -> Pvalue.t -> unit
val root : t -> string -> Pvalue.t option
val remove_root : t -> string -> unit
val root_names : t -> string list

(** {1 Allocation and access} *)

val alloc_record : t -> string -> Pvalue.t array -> Oid.t
val alloc_array : t -> string -> Pvalue.t array -> Oid.t
val alloc_string : t -> string -> Oid.t
val alloc_weak : t -> Pvalue.t -> Oid.t

val get : t -> Oid.t -> Heap.entry
(** @raise Quarantine.Quarantined if the oid is quarantined.
    @raise Heap.Heap_error if it is dangling.  (So do the other accessors
    below; use {!try_get} / {!try_field} to salvage instead.) *)

val find : t -> Oid.t -> Heap.entry option
(** [None] for dangling {e and} quarantined oids. *)

val is_live : t -> Oid.t -> bool
val class_of : t -> Oid.t -> string
val get_record : t -> Oid.t -> Heap.record
val get_array : t -> Oid.t -> Heap.arr
val get_string : t -> Oid.t -> string
val get_weak : t -> Oid.t -> Heap.weak_cell
val field : t -> Oid.t -> int -> Pvalue.t
val set_field : t -> Oid.t -> int -> Pvalue.t -> unit
val elem : t -> Oid.t -> int -> Pvalue.t
val set_elem : t -> Oid.t -> int -> Pvalue.t -> unit
val array_length : t -> Oid.t -> int
val size : t -> int

val string_value : t -> Pvalue.t -> string
(** Dereference a value expected to be a string reference.
    @raise Heap.Heap_error otherwise. *)

(** {1 Salvage reads and quarantine}

    Corrupt or dangling objects are isolated, not fatal: reads of a
    quarantined oid raise the typed {!Quarantine.Quarantined} error, and
    the [try_]-style variants return the shared {!Failure.t} as data so
    callers can render broken-link placeholders with a single match. *)

val try_get : t -> Oid.t -> (Heap.entry, Failure.t) result

val try_field : t -> Oid.t -> int -> (Pvalue.t, Failure.t) result
(** Liveness, quarantine {e and} a bad field index are reported as
    [Error] ([Failure.Bad_index] for the latter). *)

val quarantine_oid : t -> Oid.t -> string -> unit
(** Isolate an object (the scrubber and the image salvage loader call
    this; it is also available to operators).  Forces a fresh image of
    the owning shard at the next compaction point (the whole image on a
    single-shard store), which persists the quarantine set. *)

val clear_quarantine : t -> Oid.t -> unit
(** Release an oid from quarantine (repair workflows). *)

val quarantine_reason : t -> Oid.t -> string option
val is_quarantined : t -> Oid.t -> bool

val quarantined : t -> (Oid.t * string) list
(** Sorted by oid. *)

(** {1 Scrubbing}

    The online scrubber: incremental, budgeted passes verifying
    per-object checksums (trust-on-first-scan) and reference health.
    See {!Scrub}. *)

val default_scrub_budget : int

val scrub : ?budget:int -> t -> Scrub.report
(** Scan at most [budget] (default {!default_scrub_budget}) objects,
    resuming where the last call stopped; quarantines objects whose
    recorded checksum no longer matches and targets of dangling
    references. *)

val scrub_progress : t -> Scrub.state

(** {1 Retry}

    Opt-in bounded retry with full-jitter backoff for transient I/O
    failures, threaded through every I/O class: the whole stabilise,
    per-shard image loads and saves, journal appends (made idempotent by
    truncating to a savepoint between attempts), the commit marker and
    compaction commits.  Per-class policies come from
    [Config.retry_overrides]; exhausted budgets feed the per-shard
    circuit breaker.  Off by default so crash-injection tests observe
    raw failures.  Configured via [Config.retry] / [Config.retry_overrides]. *)

val retry_policy : t -> Retry.policy option

(** {1 Blobs}

    Named byte strings for non-object state; the MiniJava runtime keeps its
    compiled class files here, making classes persistent. *)

val set_blob : t -> string -> string -> unit
val blob : t -> string -> string option
val remove_blob : t -> string -> unit
val blob_keys : t -> string list

(** {1 Pins}

    Transient strong roots contributed by a running VM (static fields,
    stack frames).  The GC honours them in addition to named roots. *)

val add_pin : t -> (unit -> Oid.t list) -> unit
val pinned_oids : t -> Oid.t list

(** {1 Garbage collection and stabilisation} *)

val gc : t -> Gc.stats
(** Mark-and-sweep from the named roots and pins.
    @raise Invalid_argument while snapshot sessions are open — they pin
    the object graph. *)

val reachable : t -> Oid.Set.t

val contents : t -> Image.contents
(** The store's heap, roots and blobs, viewed as image contents (shared,
    not copied).  [Image.encode (contents s)] is a deterministic
    fingerprint of the whole persistent state. *)

val stabilise : ?path:string -> t -> unit
(** Make the store durable at [path] (or the backing file).  Snapshot
    mode writes the whole image atomically; journalled mode appends the
    mutation delta to the write-ahead journal as one atomic batch record
    and fsyncs (every [group_window]-th stabilise when group commit is
    on), compacting into a fresh image when required.
    @raise Invalid_argument if no path is available, or if a compaction
    is required inside {!with_rollback}. *)

type stats = {
  live : int;  (** live heap objects *)
  gc_count : int;
  stabilise_count : int;
  journal_depth : int;  (** records in the write-ahead journal *)
  pending_ops : int;  (** mutations buffered but not yet stabilised *)
  journal_replayed : int;  (** records replayed when this store was opened *)
  compactions : int;
  recovered_torn_tail : bool;  (** open_file dropped a torn journal tail *)
  quarantined : int;  (** objects currently quarantined *)
  io_retries : int;  (** stabilise retries absorbed by the retry policy *)
  unsynced_batches : int;
      (** group-committed batches written but not yet fsynced *)
  unhealthy_shards : int;  (** shards currently degraded or offline *)
}

val stats : t -> stats

(** {1 Per-shard introspection} *)

type shard_info = {
  shard : int;
  objects : int;  (** live heap objects hashing to this shard *)
  quarantined : int;
  journal_bytes : int;  (** bytes in this shard's journal body (0 if closed) *)
  pending_ops : int;  (** mutations buffered for this shard *)
  remembered : int;
      (** remembered-set size: live oids here referenced from other
          shards, as of the last {!gc} *)
  state : string;  (** health state name: ["healthy" | "degraded" | "offline"] *)
}

val shard_info : t -> shard_info list
(** One entry per shard, in shard order (a single entry on a
    single-shard store).  Costs one heap iteration. *)

(** {1 Transactions} *)

val clear_pins : t -> unit
(** Drop all registered pins (used when discarding the VM that installed
    them, e.g. on transaction abort). *)

val with_rollback : t -> (unit -> 'a) -> ('a, exn) result
(** Run [f] with whole-store rollback: on an exception the heap, roots
    and blobs are restored to their state at entry (oids included).

    On a journalled, backed, clean store the abort path is recovery: the
    journal is truncated to its entry savepoint and the entry state is
    rebuilt from image + journal + entry-time pending ops — O(delta)
    rather than one full store snapshot, and any records the transaction
    stabilised are cut off so the on-disk journal replays to the
    pre-transaction state.  Other stores pay the full-image snapshot.
    @raise Invalid_argument while snapshot sessions are open — a
    whole-store rollback would rewrite state under their snapshots. *)

(** {1 Sessions}

    The handle-based concurrency surface.  A snapshot session
    ({!open_session}) gives one logical client an isolated view of the
    store:

    - {b snapshot reads} — everything the session reads is the committed
      state as of open, byte-stable however much the shared store moves
      on underneath (MVCC pre-image chains, kept only while at least one
      session is open, so a store with no sessions pays one list check
      per mutation and nothing more);
    - {b read-your-writes} — the session's own buffered writes shadow its
      snapshot;
    - {b atomic publication} — {!Session.commit} validates the whole
      buffer against shard health and quarantine, then replays it
      through the store's normal guarded mutation path and the
      group-commit journal, so a committed session is exactly as durable
      as the same writes made directly;
    - {b first-committer-wins} — if any object or root/blob key this
      session wrote was committed by someone else after this session's
      snapshot, commit raises {!Failure.Commit_conflict} carrying the
      clashing oids and keys, and the session aborts having touched
      nothing.

    The {e default session} ({!default_session}) is the other kind: the
    implicit handle the legacy single-owner operations route through.
    Its reads and writes hit the shared state directly — no snapshot, no
    buffer — and its [commit] is just the durability barrier.

    GC, [with_rollback] and [mark_dirty] refuse to run while snapshot
    sessions are open (they would invalidate pinned views); commit or
    abort every session first. *)

module Session : sig
  type t
  (** A session handle.  Not thread-safe itself: one session belongs to
      one logical client; {e different} sessions on one store are how
      clients overlap. *)

  val id : t -> int
  (** Session ids are per-store, starting at 1; the default session is
      id 0. *)

  val store : t -> store
  val is_snapshot : t -> bool
  (** [false] exactly for the default session. *)

  val snapshot_epoch : t -> int
  (** The commit epoch this session reads as of (the current epoch for
      the default session). *)

  val state : t -> [ `Live | `Committed | `Aborted ]
  val is_open : t -> bool

  val buffered_ops : t -> int
  (** Writes buffered and not yet committed (always [0] for the default
      session, which never buffers). *)

  (** {2 Reads}

      Same contracts as the single-owner operations of the same name
      ([get] raises on dangling/quarantined, [find] returns [None],
      [try_get]/[try_field] return {!Failure.t} as data, ...), evaluated
      against the session's snapshot plus its own buffered writes.
      @raise Invalid_argument on a committed or aborted session. *)

  val get : t -> Oid.t -> Heap.entry
  val find : t -> Oid.t -> Heap.entry option
  val is_live : t -> Oid.t -> bool
  val class_of : t -> Oid.t -> string
  val get_record : t -> Oid.t -> Heap.record
  val get_array : t -> Oid.t -> Heap.arr
  val get_string : t -> Oid.t -> string
  val get_weak : t -> Oid.t -> Heap.weak_cell
  val field : t -> Oid.t -> int -> Pvalue.t
  val elem : t -> Oid.t -> int -> Pvalue.t
  val array_length : t -> Oid.t -> int
  val string_value : t -> Pvalue.t -> string
  val try_get : t -> Oid.t -> (Heap.entry, Failure.t) result
  val try_field : t -> Oid.t -> int -> (Pvalue.t, Failure.t) result
  val root : t -> string -> Pvalue.t option
  val root_names : t -> string list
  val blob : t -> string -> string option
  val blob_keys : t -> string list

  (** {2 Writes}

      On a snapshot session every write lands in a private buffer
      (copy-on-write overlay for heap objects) and is invisible to every
      other session until {!commit}.  Allocations reserve their oid from
      the shared allocator immediately — so sessions never collide on
      oids — but the entry stays private until commit; an aborted
      session's reserved oids are simply never used. *)

  val set_field : t -> Oid.t -> int -> Pvalue.t -> unit
  val set_elem : t -> Oid.t -> int -> Pvalue.t -> unit
  val alloc_record : t -> string -> Pvalue.t array -> Oid.t
  val alloc_array : t -> string -> Pvalue.t array -> Oid.t
  val alloc_string : t -> string -> Oid.t
  val alloc_weak : t -> Pvalue.t -> Oid.t
  val set_root : t -> string -> Pvalue.t -> unit
  val remove_root : t -> string -> unit
  val set_blob : t -> string -> string -> unit
  val remove_blob : t -> string -> unit

  val write_set : t -> Oid.t list * string list
  (** The oids (pre-existing objects mutated; ascending) and root/blob
      keys (sorted) this session has written — the set conflict
      detection will check at commit. *)

  (** {2 Commit and abort} *)

  val commit : t -> unit
  (** Publish the session's buffered writes atomically and close the
      session.  On the default session this is just the durability
      barrier (stabilise a journalled backed store).
      @raise Failure.Commit_conflict if first-committer-wins detection
      refuses the commit; the session is aborted first, having changed
      nothing.
      @raise Failure.Shard_degraded (or [Quarantine.Quarantined] /
      [Heap.Heap_error]) if up-front validation refuses an op; the
      session {e stays live} — nothing was published — so the caller can
      repair and retry the commit.
      @raise Invalid_argument on an already-closed session. *)

  val abort : t -> unit
  (** Discard every buffered write and close the session.  No journal
      residue by construction: nothing ever left the buffer.
      @raise Invalid_argument on the default session or an
      already-closed one. *)

  (** {2 Introspection} *)

  val live_count : t -> int
  (** Objects visible to this session's snapshot. *)

  val stats : t -> stats
  (** Store stats with [live] replaced by this session's
      {!live_count} — counts reflect the snapshot, not the dirty
      buffer. *)

  val snapshot_contents : t -> Image.contents
  (** The session's full visible state (snapshot + own writes) as fresh,
      unshared image contents; [Image.encode] of it is a byte-stable
      fingerprint of the snapshot however much the shared store has
      moved on. *)

  val atomically : store -> (unit -> 'a) -> ('a, exn) result
  (** The single-owner transaction: run the thunk against the shared
      store under {!with_rollback}, then pay the commit barrier on
      success.  This is what {!Hyperprog.Transaction.transact} wraps.
      Refused (by [with_rollback]) while snapshot sessions are open. *)
end

val open_session : t -> Session.t
(** Pin a snapshot session on the committed state as of now. *)

val default_session : t -> Session.t
(** The store's implicit direct-mode session (id 0, one per store) —
    the handle the single-owner operations route through. *)

val open_session_count : t -> int
(** Snapshot sessions currently open (the default session is not
    counted). *)
