(* Per-shard health tracking: the fault-domain state machine.

   Each shard of a sharded store carries one tracker.  The state moves

     Healthy --(breaker trips / salvage-heavy open)--> Degraded
     Healthy --(image unreadable at open)-----------> Offline
     Degraded/Offline --(Store.repair)--------------> Healthy

   State transitions happen on the calling domain only (after parallel
   sections have joined), so [state] is a plain mutable field.  The
   counters are bumped from pool domains while stabilise/scrub fan out,
   so they are atomics.  [failures] counts *consecutive* exhausted
   transient I/O failures: any successful I/O on the shard resets it,
   so one flaky write never trips the breaker — only a run of them. *)

type state =
  | Healthy
  | Degraded of string
  | Offline of string

type t = {
  mutable state : state;
  failures : int Atomic.t; (* consecutive exhausted transient failures *)
  trips : int Atomic.t; (* circuit-breaker demotions *)
  degraded_reads : int Atomic.t; (* reads served while not healthy *)
  refused_writes : int Atomic.t; (* writes rejected with Shard_degraded *)
  repairs : int Atomic.t;
}

let create () =
  {
    state = Healthy;
    failures = Atomic.make 0;
    trips = Atomic.make 0;
    degraded_reads = Atomic.make 0;
    refused_writes = Atomic.make 0;
    repairs = Atomic.make 0;
  }

let state t = t.state

let healthy t =
  match t.state with
  | Healthy -> true
  | Degraded _ | Offline _ -> false

let state_name = function
  | Healthy -> "healthy"
  | Degraded _ -> "degraded"
  | Offline _ -> "offline"

let describe = function
  | Healthy -> "healthy"
  | Degraded reason -> "degraded: " ^ reason
  | Offline reason -> "offline: " ^ reason

(* Demotion never clobbers a harder state: an offline shard stays
   offline until repaired, whatever the breaker sees meanwhile. *)
let degrade t reason =
  match t.state with
  | Healthy ->
    t.state <- Degraded reason;
    Atomic.incr t.trips
  | Degraded _ | Offline _ -> ()

let offline t reason =
  match t.state with
  | Healthy | Degraded _ ->
    t.state <- Offline reason;
    Atomic.incr t.trips
  | Offline _ -> ()

let promote t =
  if not (healthy t) then Atomic.incr t.repairs;
  t.state <- Healthy;
  Atomic.set t.failures 0

(* Failure accounting, called from pool domains. *)
let note_failure t = Atomic.incr t.failures
let note_ok t = if Atomic.get t.failures <> 0 then Atomic.set t.failures 0
let note_degraded_read t = Atomic.incr t.degraded_reads
let note_refused_write t = Atomic.incr t.refused_writes
let failures t = Atomic.get t.failures
let trips t = Atomic.get t.trips
let degraded_reads t = Atomic.get t.degraded_reads
let refused_writes t = Atomic.get t.refused_writes
let repairs t = Atomic.get t.repairs
