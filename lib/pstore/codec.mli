(** Binary encoding primitives used by the store image format and the
    MiniJava class-file format.  All multi-byte integers are little-endian;
    strings are length-prefixed. *)

type writer
type reader

exception Decode_error of string

val decode_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Decode_error} with a formatted message. *)

val writer : unit -> writer
val contents : writer -> string

val reset : writer -> unit
(** Empty the writer for reuse, keeping its internal buffer — for hot
    paths that would otherwise allocate a fresh writer per item. *)

val reader : string -> reader
val remaining : reader -> int
val at_end : reader -> bool

val put_u8 : writer -> int -> unit
val put_bool : writer -> bool -> unit
val put_i32 : writer -> int32 -> unit
val put_int : writer -> int -> unit
val put_i64 : writer -> int64 -> unit
val put_f64 : writer -> float -> unit
val put_string : writer -> string -> unit
val put_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val put_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val put_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

val put_bytes : writer -> string -> unit
(** Raw bytes, no length prefix. *)

val get_bytes : reader -> int -> string
(** Raw bytes, no length prefix. *)

val get_u8 : reader -> int
val get_bool : reader -> bool
val get_i32 : reader -> int32
val get_int : reader -> int
val get_i64 : reader -> int64
val get_f64 : reader -> float
val get_string : reader -> string
val get_list : reader -> (reader -> 'a) -> 'a list
val get_array : reader -> (reader -> 'a) -> 'a array
val get_option : reader -> (reader -> 'a) -> 'a option

val crc32 : string -> int32
(** CRC-32 checksum (IEEE 802.3 polynomial) of a byte string. *)

(** {1 Checksummed frames}

    [int length][u32 crc32(payload)][payload] — the framing shared by
    per-object image records and write-ahead journal records. *)

val put_frame : writer -> string -> unit

val get_frame : reader -> string
(** Read a frame and verify its checksum.
    @raise Decode_error on truncation or checksum mismatch. *)

val checked_frame : reader -> (string, string) result
(** Like {!get_frame}, but a checksum mismatch is returned as [Error]
    with the reader advanced past the frame, so salvage loops can skip
    the corrupt frame and keep reading.
    @raise Decode_error if the frame structure itself is unreadable. *)
