(* Sharded-store metadata: the manifest file, shard file naming, oid/key
   hashing, and the store-level commit marker.

   A sharded store replaces the single image at [path] with a small
   manifest naming the shard count and the current epoch of every shard
   image.  Shard files live next to it:

     path             the manifest (magic "HPJMANIF")
     path.s<k>.<e>    shard [k]'s image at epoch [e]
     path.s<k>.<e>.wal   its journal (journalled mode)
     path.marker.<m>  the commit marker (journalled mode)

   Epochs make image replacement atomic without renaming over live
   files: a compaction writes the new images at epoch [e+1], then
   atomically renames the manifest — the single commit point — and only
   then deletes the stale epoch's files.  A crash before the rename
   leaves the old manifest naming the old (complete) files.

   The marker is the cross-shard commit point for journalled batches:
   each stabilise appends its batch to every dirty shard journal stamped
   with one store-level sequence number, and the sequence is committed
   only once a marker record carrying it is fsynced AFTER those journal
   fsyncs.  Recovery replays per-shard batches only up to the marker's
   last sequence, so a crash between per-shard appends rolls the whole
   stabilise back.  Compactions that rewrite every shard rotate to a
   fresh marker file (sequence numbers restart at 0). *)

let magic = "HPJMANIF"

type t = {
  nshards : int;
  marker_epoch : int;  (* -1 when the store is in snapshot mode *)
  epochs : int array;  (* current image epoch per shard *)
}

(* -- hashing -------------------------------------------------------------- *)

(* Knuth multiplicative hash: consecutive oids (allocation order) spread
   evenly instead of striping, so one session's objects don't all land
   in one shard. *)
let shard_of_oid ~count oid =
  if count <= 1 then 0 else Oid.to_int oid * 2654435761 land max_int mod count

let shard_of_key ~count key =
  if count <= 1 then 0 else Hashtbl.hash key mod count

(* -- file naming ---------------------------------------------------------- *)

let shard_image path k e = Printf.sprintf "%s.s%d.%d" path k e
let shard_wal path k e = shard_image path k e ^ ".wal"
let marker_path path m = Printf.sprintf "%s.marker.%d" path m

(* -- manifest I/O --------------------------------------------------------- *)

let encode m =
  let open Codec in
  let w = writer () in
  put_bytes w magic;
  let body =
    let b = writer () in
    put_u8 b 1 (* version *);
    put_int b m.nshards;
    put_int b m.marker_epoch;
    put_list b put_int (Array.to_list m.epochs);
    contents b
  in
  put_frame w body;
  contents w

let decode data =
  let open Codec in
  if
    String.length data < String.length magic
    || not (String.equal (String.sub data 0 (String.length magic)) magic)
  then decode_error "Manifest: bad magic"
  else begin
    let r = reader (String.sub data (String.length magic) (String.length data - String.length magic)) in
    let body = reader (get_frame r) in
    (match get_u8 body with
    | 1 -> ()
    | v -> decode_error "Manifest: unsupported version %d" v);
    let nshards = get_int body in
    let marker_epoch = get_int body in
    let epochs = Array.of_list (get_list body get_int) in
    if nshards < 1 || Array.length epochs <> nshards then
      decode_error "Manifest: inconsistent shard count";
    { nshards; marker_epoch; epochs }
  end

(* Same atomic protocol as [Image.save]: temp file, fsync, rename,
   directory fsync.  The rename IS the sharded store's commit point. *)
let save ?(durable = true) path m =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Faults.output_string oc (encode m);
     if durable then Faults.fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Faults.rename tmp path;
  if durable then Faults.fsync_dir (Filename.dirname (if Filename.is_relative path then Filename.concat (Sys.getcwd ()) path else path))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Is the file at [path] a shard manifest (vs a legacy flat image)? *)
let is_manifest path =
  (not (Sys.file_exists path))
  |> function
  | true -> false
  | false -> (
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try String.equal (really_input_string ic (String.length magic)) magic
        with End_of_file -> false))

let load path = decode (read_file path)

(* Best-effort removal of files from superseded epochs / markers.  Stale
   files are harmless (nothing references them), so errors are ignored. *)
let cleanup_stale path m =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let keep = Hashtbl.create 16 in
  Array.iteri
    (fun k e ->
      Hashtbl.replace keep (Filename.basename (shard_image path k e)) ();
      Hashtbl.replace keep (Filename.basename (shard_wal path k e)) ())
    m.epochs;
  if m.marker_epoch >= 0 then
    Hashtbl.replace keep (Filename.basename (marker_path path m.marker_epoch)) ();
  let is_shard_file name =
    (* base ^ ".s<k>.<e>"[".wal"] or base ^ ".marker.<m>" *)
    String.length name > String.length base
    && String.sub name 0 (String.length base) = base
    && (let rest = String.sub name (String.length base) (String.length name - String.length base) in
        let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
        match String.split_on_char '.' rest with
        | [ ""; s; e ] when String.length s > 1 && s.[0] = 's' ->
          is_digits (String.sub s 1 (String.length s - 1)) && is_digits e
        | [ ""; s; e; "wal" ] when String.length s > 1 && s.[0] = 's' ->
          is_digits (String.sub s 1 (String.length s - 1)) && is_digits e
        | [ ""; "marker"; m ] -> is_digits m
        | _ -> false)
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if is_shard_file name && not (Hashtbl.mem keep name) then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      names

(* -- commit marker -------------------------------------------------------- *)

module Marker = struct
  let magic = "HPJMARK1"

  type t = { oc : out_channel }

  let frame_seq seq =
    let open Codec in
    let w = writer () in
    let body =
      let b = writer () in
      put_i64 b (Int64.of_int seq);
      contents b
    in
    put_frame w body;
    contents w

  let create path =
    let oc = open_out_bin path in
    (try
       Faults.output_string oc magic;
       Faults.fsync_channel oc
     with e ->
       close_out_noerr oc;
       raise e);
    { oc }

  let append t seq = Faults.output_string t.oc (frame_seq seq)
  let sync t = Faults.fsync_channel t.oc

  let position t =
    flush t.oc;
    pos_out t.oc

  let truncate_to t ~pos =
    flush t.oc;
    Unix.ftruncate (Unix.descr_of_out_channel t.oc) pos;
    seek_out t.oc pos

  let close t = close_out_noerr t.oc
  let crash t = try Unix.close (Unix.descr_of_out_channel t.oc) with _ -> ()

  type replay = {
    committed : int;  (* last good sequence number; 0 if none *)
    valid_bytes : int;
  }

  (* Lenient, like journal recovery: stop at the first torn record. *)
  let read path =
    if not (Sys.file_exists path) then None
    else begin
      let data = read_file path in
      let len = String.length data in
      let hlen = String.length magic in
      if len < hlen || not (String.equal (String.sub data 0 hlen) magic) then None
      else begin
        let committed = ref 0 in
        let pos = ref hlen in
        let valid = ref hlen in
        let stop = ref false in
        (try
           while (not !stop) && !pos + 8 <= len do
             let r = Codec.reader (String.sub data !pos 8) in
             let payload_len = Codec.get_int r in
             let crc = Codec.get_i32 r in
             if payload_len < 0 || !pos + 8 + payload_len > len then stop := true
             else begin
               let payload = String.sub data (!pos + 8) payload_len in
               if not (Int32.equal (Codec.crc32 payload) crc) then stop := true
               else begin
                 committed := Int64.to_int (Codec.get_i64 (Codec.reader payload));
                 pos := !pos + 8 + payload_len;
                 valid := !pos
               end
             end
           done
         with Codec.Decode_error _ -> ());
        Some { committed = !committed; valid_bytes = !valid }
      end
    end

  (* Seek rather than O_APPEND — see Journal.open_for_append: [pos_out]
     on an append-mode channel reads 0 until the first write, which would
     corrupt the rollback savepoints taken right after a reopen. *)
  let open_for_append path ~valid_bytes =
    Unix.truncate path valid_bytes;
    let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
    seek_out oc valid_bytes;
    { oc }
end
