(* Text rendering of browser panels (the AWT substitution): each panel
   becomes a box listing its rows, with sharing markers from Graph and
   arrows on rows that can be opened. *)

open Pstore

let pad s n = if String.length s >= n then s else s ^ String.make (n - String.length s) ' '

(* Render one panel.  [shared] marks oids referenced from multiple
   places. *)
let panel ?(shared = Oid.Set.empty) b p =
  let rows = Ocb.rows b p in
  let title = Printf.sprintf "Panel %d: %s" p.Ocb.panel_id (Ocb.entity_title b p.Ocb.entity) in
  let label_width =
    List.fold_left (fun acc r -> max acc (String.length r.Ocb.row_label)) 5 rows
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("+- " ^ title ^ " " ^ String.make (max 1 (56 - String.length title)) '-' ^ "\n");
  List.iteri
    (fun i r ->
      let selected = p.Ocb.selected = Some i in
      let marker =
        match r.Ocb.row_value with
        | Some (Ocb.E_object oid) when Oid.Set.mem oid shared -> " *shared*"
        | _ -> ""
      in
      let arrow = if r.Ocb.row_value <> None then " ->" else "" in
      let loc = if r.Ocb.row_location <> None then " [loc]" else "" in
      Buffer.add_string buf
        (Printf.sprintf "| %s %s : %s%s%s%s\n"
           (if selected then ">" else " ")
           (pad r.Ocb.row_label label_width) r.Ocb.row_display marker loc arrow))
    rows;
  Buffer.add_string buf ("+" ^ String.make 58 '-' ^ "\n");
  Buffer.contents buf

(* Render the whole browser: front-most panel first. *)
let browser ?(max_panels = 4) b =
  let shared = Graph.shared_objects (Ocb.vm b).Minijava.Rt.store in
  let visible = List.filteri (fun i _ -> i < max_panels) (Ocb.panels b) in
  String.concat "\n" (List.map (panel ~shared b) visible)

(* A store census block (class name, instance count). *)
let census store =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "store census:\n";
  List.iter
    (fun (cls, n) -> Buffer.add_string buf (Printf.sprintf "  %6d  %s\n" n cls))
    (Graph.census store);
  (match List.length (Store.quarantined store) with
  | 0 -> ()
  | n -> Buffer.add_string buf (Printf.sprintf "  %6d  <quarantined>\n" n));
  (* Sharded stores append a per-shard breakdown: the census is where an
     operator looks first for a pathologically hot shard. *)
  if Store.shards store > 1 then
    List.iter
      (fun (info : Store.shard_info) ->
        Buffer.add_string buf
          (Printf.sprintf "  shard %d: %d objects, %d quarantined, %d journal bytes\n"
             info.Store.shard info.Store.objects info.Store.quarantined
             info.Store.journal_bytes))
      (Store.shard_info store);
  (* One observability line: total operations this store has served, and
     whether span tracing is currently capturing events. *)
  let obs = Store.obs store in
  Buffer.add_string buf
    (Printf.sprintf "  store ops: %d (tracing %s)\n" (Obs.total obs)
       (if Obs.enabled obs then "on" else "off"));
  Buffer.contents buf
