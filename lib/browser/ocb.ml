(* OCB — the object/class browser (Section 5.3).

   The browser is controlled programmatically through this class
   interface and call-back functions, exactly as its design aims state;
   the interactive front end (bin/hpjava) and the hyper-programming UI
   (lib/hyperui) are thin layers over it.  Each panel displays one entity
   (object, class, method, field, value); navigation opens new panels.
   Every row distinguishes the VALUE it contains from the LOCATION that
   holds it, supporting the paper's value/location link choice. *)

open Pstore
open Minijava

type entity =
  | E_object of Oid.t
  | E_class of string
  | E_method of { cls : string; name : string; desc : string; static : bool }
  | E_constructor of { cls : string; desc : string }
  | E_value of Pvalue.t
  | E_roots (* the persistent root directory *)

type location =
  | Loc_static_field of string * string
  | Loc_instance_field of Oid.t * string * string (* holder, declaring class, field *)
  | Loc_array_element of Oid.t * int

type row = {
  row_label : string;
  row_display : string;
  row_value : entity option; (* right half: the value contained *)
  row_location : location option; (* left half: the location itself *)
}

type panel = {
  panel_id : int;
  entity : entity;
  mutable selected : int option;
}

type t = {
  vm : Rt.t;
  formats : Display_format.registry;
  mutable panels : panel list; (* front-most first *)
  mutable next_id : int;
  mutable on_open : (entity -> unit) list;
  mutable max_array_rows : int;
}

let create ?(formats = Display_format.create_registry ()) vm =
  { vm; formats; panels = []; next_id = 1; on_open = []; max_array_rows = 64 }

let vm b = b.vm
let panels b = b.panels
let formats b = b.formats

let front b =
  match b.panels with
  | p :: _ -> Some p
  | [] -> None

let on_open b f = b.on_open <- f :: b.on_open

let open_entity b entity =
  let panel = { panel_id = b.next_id; entity; selected = None } in
  b.next_id <- b.next_id + 1;
  b.panels <- panel :: b.panels;
  List.iter (fun f -> f entity) b.on_open;
  panel

let close_panel b id = b.panels <- List.filter (fun p -> p.panel_id <> id) b.panels

let bring_to_front b id =
  match List.partition (fun p -> p.panel_id = id) b.panels with
  | [ p ], rest -> b.panels <- p :: rest
  | _ -> ()

(* -- entity naming ------------------------------------------------------------ *)

(* Unreadable objects display distinctly instead of crashing the panel:
   the scrubber may quarantine any object while the browser is open. *)
let damaged_title oid = function
  | Failure.Quarantined _ -> Printf.sprintf "<quarantined @%d>" (Oid.to_int oid)
  | _ -> Printf.sprintf "<dangling @%d>" (Oid.to_int oid)

let entity_title b = function
  | E_object oid -> begin
    match Store.try_get b.vm.Rt.store oid with
    | Ok _ -> Printf.sprintf "%s@%d" (Store.class_of b.vm.Rt.store oid) (Oid.to_int oid)
    | Error e -> damaged_title oid e
  end
  | E_class name -> "class " ^ name
  | E_method { cls; name; desc; _ } -> Printf.sprintf "method %s.%s%s" cls name desc
  | E_constructor { cls; desc } -> Printf.sprintf "constructor %s%s" cls desc
  | E_value v -> "value " ^ Pvalue.to_string v
  | E_roots -> "persistent roots"

(* A one-line display of a value, truncated and with sharing marks. *)
let display_value b ?(format = Display_format.default) v =
  match v with
  | Pvalue.Ref oid -> begin
    match Store.try_get b.vm.Rt.store oid with
    | Error e -> damaged_title oid e
    | Ok (Heap.Str s) ->
      let s = if String.length s > format.Display_format.max_string then String.sub s 0 format.Display_format.max_string ^ "…" else s in
      Printf.sprintf "%S" s
    | Ok (Heap.Record r) -> begin
      let fmt = Display_format.lookup b.vm b.formats r.Heap.class_name in
      match fmt.Display_format.summary with
      | Some f -> f b.vm oid
      | None -> Printf.sprintf "%s@%d" r.Heap.class_name (Oid.to_int oid)
    end
    | Ok (Heap.Array a) ->
      Printf.sprintf "%s[%d]@%d"
        (Jtype.to_string (Jtype.of_descriptor a.Heap.elem_type))
        (Array.length a.Heap.elems) (Oid.to_int oid)
    | Ok (Heap.Weak _) -> Printf.sprintf "weak@%d" (Oid.to_int oid)
  end
  | v -> Pvalue.to_string v

let value_entity v =
  match v with
  | Pvalue.Ref oid -> Some (E_object oid)
  | Pvalue.Null -> None
  | prim -> Some (E_value prim)

(* -- rows ----------------------------------------------------------------------- *)

let object_rows b oid =
  match Store.try_get b.vm.Rt.store oid with
  | Error e ->
    (* A panel over a quarantined or dangling object degrades to a
       diagnosis instead of raising. *)
    let reason_rows =
      match Store.quarantine_reason b.vm.Rt.store oid with
      | Some reason ->
        [ { row_label = "reason"; row_display = reason; row_value = None; row_location = None } ]
      | None -> []
    in
    { row_label = "status";
      row_display = Failure.describe e;
      row_value = None;
      row_location = None;
    }
    :: reason_rows
  | Ok (Heap.Str s) ->
    [
      { row_label = "class"; row_display = Jtype.string_class; row_value = Some (E_class Jtype.string_class); row_location = None };
      { row_label = "length"; row_display = string_of_int (String.length s); row_value = Some (E_value (Pvalue.Int (Int32.of_int (String.length s)))); row_location = None };
      { row_label = "value"; row_display = Printf.sprintf "%S" s; row_value = None; row_location = None };
    ]
  | Ok (Heap.Weak cell) ->
    [
      {
        row_label = "target";
        row_display = display_value b cell.Heap.target;
        row_value = value_entity cell.Heap.target;
        row_location = None;
      };
    ]
  | Ok (Heap.Array a) ->
    let len = Array.length a.Heap.elems in
    let shown = min len b.max_array_rows in
    let elem_rows =
      List.init shown (fun i ->
          let v = a.Heap.elems.(i) in
          {
            row_label = Printf.sprintf "[%d]" i;
            row_display = display_value b v;
            row_value = value_entity v;
            row_location = Some (Loc_array_element (oid, i));
          })
    in
    let header =
      {
        row_label = "length";
        row_display = string_of_int len;
        row_value = Some (E_value (Pvalue.Int (Int32.of_int len)));
        row_location = None;
      }
    in
    let trailer =
      if shown < len then
        [ { row_label = "…"; row_display = Printf.sprintf "(%d more)" (len - shown); row_value = None; row_location = None } ]
      else []
    in
    (header :: elem_rows) @ trailer
  | Ok (Heap.Record r) -> begin
    let cls = r.Heap.class_name in
    let class_row =
      { row_label = "class"; row_display = cls; row_value = Some (E_class cls); row_location = None }
    in
    match Rt.find_class b.vm cls with
    | None ->
      (* A record whose class is not loaded in this VM: raw field dump. *)
      class_row
      :: List.mapi
           (fun i v ->
             {
               row_label = Printf.sprintf "field%d" i;
               row_display = display_value b v;
               row_value = value_entity v;
               row_location = None;
             })
           (Array.to_list r.Heap.fields)
    | Some rc ->
      let format = Display_format.lookup b.vm b.formats cls in
      let super_len =
        match rc.Rt.rc_super with
        | Some super -> Array.length (Rt.get_class b.vm super).Rt.rc_layout
        | None -> 0
      in
      let field_rows =
        Array.to_list rc.Rt.rc_layout
        |> List.mapi (fun slot rf -> (slot, rf))
        |> List.filter (fun (slot, rf) ->
               Display_format.visible_field format ~inherited:(slot < super_len) rf)
        |> List.map (fun (slot, rf) ->
               let v = Store.field b.vm.Rt.store oid slot in
               {
                 row_label = rf.Rt.rf_name;
                 row_display = display_value b ~format v;
                 row_value = value_entity v;
                 row_location = Some (Loc_instance_field (oid, cls, rf.Rt.rf_name));
               })
      in
      class_row :: field_rows
  end

let class_rows b cls =
  match Rt.find_class b.vm cls with
  | None -> [ { row_label = "error"; row_display = "class not loaded"; row_value = None; row_location = None } ]
  | Some rc ->
    let format = Display_format.lookup b.vm b.formats cls in
    let super_row =
      match rc.Rt.rc_super with
      | Some super ->
        [ { row_label = "extends"; row_display = super; row_value = Some (E_class super); row_location = None } ]
      | None -> []
    in
    let interface_rows =
      List.map
        (fun i -> { row_label = "implements"; row_display = i; row_value = Some (E_class i); row_location = None })
        rc.Rt.rc_interfaces
    in
    let source_rows =
      (* "the hyper-program source text is always available for any
         persistent class created within the system" *)
      match rc.Rt.rc_classfile.Classfile.cf_source with
      | Some source ->
        let lines = List.length (String.split_on_char '\n' source) in
        [
          {
            row_label = "source";
            row_display = Printf.sprintf "available (%d lines)" lines;
            row_value = None;
            row_location = None;
          };
        ]
      | None ->
        [ { row_label = "source"; row_display = "not recorded"; row_value = None; row_location = None } ]
    in
    let static_rows =
      Hashtbl.fold (fun name slot acc -> (name, slot) :: acc) rc.Rt.rc_static_index []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (name, slot) ->
             let v = rc.Rt.rc_statics.(slot) in
             {
               row_label = "static " ^ name;
               row_display = display_value b v;
               row_value = value_entity v;
               row_location = Some (Loc_static_field (cls, name));
             })
    in
    let method_rows =
      let own = Hashtbl.fold (fun _ ms acc -> ms @ acc) rc.Rt.rc_methods [] in
      let inherited =
        if format.Display_format.hide_superclass_methods then []
        else begin
          match rc.Rt.rc_super with
          | Some super ->
            Reflect.methods_of_class b.vm super ~include_inherited:true
          | None -> []
        end
      in
      (* An override shadows the inherited method: dedupe by name+desc,
         keeping the subclass's declaration. *)
      let seen = Hashtbl.create 16 in
      own @ inherited
      |> List.filter (fun m ->
             let key = m.Rt.rm_name ^ m.Rt.rm_desc in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.replace seen key ();
               true
             end)
      |> List.filter (fun m -> m.Rt.rm_name <> "<clinit>")
      |> List.sort (fun a b ->
             match String.compare a.Rt.rm_name b.Rt.rm_name with
             | 0 -> String.compare a.Rt.rm_desc b.Rt.rm_desc
             | c -> c)
      |> List.map (fun m ->
             if String.equal m.Rt.rm_name "<init>" then
               {
                 row_label = "constructor";
                 row_display = cls ^ m.Rt.rm_desc;
                 row_value = Some (E_constructor { cls; desc = m.Rt.rm_desc });
                 row_location = None;
               }
             else
               {
                 row_label = (if m.Rt.rm_static then "static method" else "method");
                 row_display = m.Rt.rm_name ^ m.Rt.rm_desc;
                 row_value =
                   Some
                     (E_method
                        { cls = m.Rt.rm_class; name = m.Rt.rm_name; desc = m.Rt.rm_desc; static = m.Rt.rm_static });
                 row_location = None;
               })
    in
    super_row @ interface_rows @ source_rows @ static_rows @ method_rows

let method_rows _b (cls, name, desc, static) =
  let msig = Jtype.msig_of_descriptor desc in
  [
    { row_label = "declaring class"; row_display = cls; row_value = Some (E_class cls); row_location = None };
    { row_label = "name"; row_display = name; row_value = None; row_location = None };
    { row_label = "static"; row_display = string_of_bool static; row_value = None; row_location = None };
    {
      row_label = "signature";
      row_display = Format.asprintf "%a" Jtype.pp_msig msig;
      row_value = None;
      row_location = None;
    };
  ]

let roots_rows b =
  let store = b.vm.Rt.store in
  List.map
    (fun name ->
      let v = Option.value (Store.root store name) ~default:Pvalue.Null in
      {
        row_label = name;
        row_display = display_value b v;
        row_value = value_entity v;
        row_location = None;
      })
    (Store.root_names store)

let rows b panel =
  match panel.entity with
  | E_object oid -> object_rows b oid
  | E_class cls -> class_rows b cls
  | E_method { cls; name; desc; static } -> method_rows b (cls, name, desc, static)
  | E_constructor { cls; desc } ->
    [
      { row_label = "declaring class"; row_display = cls; row_value = Some (E_class cls); row_location = None };
      { row_label = "signature"; row_display = desc; row_value = None; row_location = None };
    ]
  | E_value v ->
    [ { row_label = "value"; row_display = Pvalue.to_string v; row_value = None; row_location = None } ]
  | E_roots -> roots_rows b

(* -- navigation ------------------------------------------------------------------ *)

(* Open the value of the n-th row of a panel in a new panel. *)
let open_row b panel n =
  let all = rows b panel in
  match List.nth_opt all n with
  | Some { row_value = Some entity; _ } ->
    panel.selected <- Some n;
    Some (open_entity b entity)
  | Some _ | None -> None

(* Open the class panel for an object panel (Display Class). *)
let open_class_of b panel =
  match panel.entity with
  | E_object oid -> begin
    match Store.try_get b.vm.Rt.store oid with
    | Ok _ -> Some (open_entity b (E_class (Store.class_of b.vm.Rt.store oid)))
    | Error _ -> None
  end
  | E_class _ | E_method _ | E_constructor _ | E_value _ | E_roots -> None

(* Invoke a no-argument method shown in a method panel on a receiver
   (the "in some cases method invocation" facility). *)
let invoke b ~cls ~name ~desc ~receiver =
  let rm = Rt.resolve_method b.vm cls name desc in
  if rm.Rt.rm_static then Vm.call_method b.vm rm []
  else
    match receiver with
    | Some recv -> Vm.call_virtual b.vm ~recv ~name ~desc []
    | None -> Rt.jerror "java.lang.IllegalArgumentException" "instance method needs a receiver"

(* Open the persistent-root directory. *)
let open_roots b = open_entity b E_roots

let open_object b oid = open_entity b (E_object oid)
let open_class b cls = open_entity b (E_class cls)
